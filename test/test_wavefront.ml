(* Tests for wavefront scheduling, the no-peeling alternative. *)

module Ir = Lf_ir.Ir
module Interp = Lf_ir.Interp
module Schedule = Lf_core.Schedule
module Derive = Lf_core.Derive
module Wavefront = Lf_core.Wavefront

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int

let test_jacobi_2d_semantics () =
  let p = Lf_kernels.Jacobi.program ~n:40 () in
  let d = Derive.of_program ~depth:2 p in
  let reference = Interp.run p in
  List.iter
    (fun (nprocs, tile) ->
      let sched = Wavefront.schedule ~tile ~derive:d ~nprocs p in
      List.iter
        (fun order ->
          check bool
            (Printf.sprintf "jacobi wavefront P=%d tile=%d" nprocs tile)
            true
            (Interp.equal reference (Schedule.execute ~order sched)))
        [ Schedule.Natural; Schedule.Reversed; Schedule.Interleaved ])
    [ (1, 8); (2, 8); (4, 5); (3, 16) ]

let test_1d_semantics () =
  let p = Lf_kernels.Ll18.program ~n:32 () in
  let reference = Interp.run p in
  let sched = Wavefront.schedule ~tile:7 ~nprocs:4 p in
  List.iter
    (fun order ->
      check bool "ll18 wavefront" true
        (Interp.equal reference (Schedule.execute ~order sched)))
    [ Schedule.Natural; Schedule.Reversed; Schedule.Interleaved ]

let test_1d_is_serial_chain () =
  (* 1-D wavefront: one tile per phase -> one busy processor *)
  let p = Lf_kernels.Ll18.program ~n:32 () in
  let sched = Wavefront.schedule ~tile:10 ~nprocs:4 p in
  check int "4 diagonals (32 fused positions, tile 10)" 4
    (Wavefront.num_phases sched);
  List.iter
    (fun ph ->
      let busy =
        Array.to_list ph |> List.filter (fun l -> l <> []) |> List.length
      in
      check int "one busy proc per phase" 1 busy)
    sched.Schedule.phases

let test_2d_diagonal_count () =
  (* 30x30 fused positions, tile 10: 3x3 tiles -> 5 diagonals *)
  let p = Lf_kernels.Jacobi.program ~n:32 () in
  let d = Derive.of_program ~depth:2 p in
  (* fused positions per dim: [1, 31] = 31 positions -> 4 tiles of 10 *)
  let sched = Wavefront.schedule ~tile:10 ~derive:d ~nprocs:2 p in
  check int "7 diagonals for 4x4 tiles" 7 (Wavefront.num_phases sched)

let test_coverage_exact () =
  let p = Lf_kernels.Jacobi.program ~n:24 () in
  let d = Derive.of_program ~depth:2 p in
  let sched = Wavefront.schedule ~tile:6 ~derive:d ~nprocs:3 p in
  List.iteri
    (fun k (n : Ir.nest) ->
      let pts = Schedule.coverage sched ~nest:k in
      let tbl = Hashtbl.create 64 in
      List.iter
        (fun (_, _, pt) ->
          if Hashtbl.mem tbl pt then Alcotest.fail "duplicate iteration";
          Hashtbl.replace tbl pt ())
        pts;
      check int "covered" (Ir.nest_iterations n) (Hashtbl.length tbl))
    p.Ir.nests

let test_more_barriers_than_peeling () =
  let p = Lf_kernels.Jacobi.program ~n:64 () in
  let d = Derive.of_program ~depth:2 p in
  let wf = Wavefront.schedule ~tile:8 ~derive:d ~nprocs:4 p in
  let sp = Schedule.fused ~strip:8 ~derive:d ~nprocs:4 p in
  check bool "wavefront has many more phases" true
    (Wavefront.num_phases wf > List.length sp.Schedule.phases * 3)

let test_simulated_peeling_beats_wavefront_1d () =
  (* in 1-D the wavefront is serial: shift-and-peel must be much
     faster on several processors *)
  let p = Lf_kernels.Calc.program ~n:96 () in
  let machine = Lf_machine.Machine.convex in
  let wf = Wavefront.schedule ~tile:16 ~nprocs:4 p in
  let sp = Schedule.fused ~strip:16 ~nprocs:4 p in
  let r_wf = Lf_machine.Exec.run ~machine wf in
  let r_sp = Lf_machine.Exec.run ~machine sp in
  check bool "wavefront result correct" true
    (Interp.equal r_wf.Lf_machine.Exec.store r_sp.Lf_machine.Exec.store);
  check bool "peeling at least 2x faster" true
    (r_wf.Lf_machine.Exec.cycles > 2.0 *. r_sp.Lf_machine.Exec.cycles)

let suite =
  [
    ("jacobi 2-D semantics", `Quick, test_jacobi_2d_semantics);
    ("1-D semantics", `Quick, test_1d_semantics);
    ("1-D is a serial chain", `Quick, test_1d_is_serial_chain);
    ("2-D diagonal count", `Quick, test_2d_diagonal_count);
    ("coverage exact", `Quick, test_coverage_exact);
    ("more barriers than peeling", `Quick, test_more_barriers_than_peeling);
    ("peeling beats 1-D wavefront", `Quick, test_simulated_peeling_beats_wavefront_1d);
  ]
