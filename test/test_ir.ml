(* Unit tests for the IR: affine arithmetic, builders, validation,
   pretty-printing, the reference interpreter, and statement guards. *)

module Ir = Lf_ir.Ir
module Interp = Lf_ir.Interp

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int
let string = Alcotest.string

(* ------------------------------------------------------------------ *)
(* Affine expressions                                                  *)

let test_affine_make () =
  let a = Ir.affine ~const:3 [ (1, "i"); (0, "j") ] in
  check int "zero coefficients dropped" 1 (List.length a.Ir.terms);
  check int "const kept" 3 a.Ir.const

let test_affine_eval () =
  let a = Ir.affine ~const:2 [ (3, "i"); (-1, "j") ] in
  let env = function "i" -> 4 | "j" -> 5 | _ -> 0 in
  check int "3*4 - 5 + 2" 9 (Ir.affine_eval a env)

let test_affine_add () =
  let a = Ir.affine ~const:1 [ (2, "i") ] in
  let b = Ir.affine ~const:2 [ (3, "i"); (1, "j") ] in
  let s = Ir.affine_add a b in
  let env = function "i" -> 10 | "j" -> 100 | _ -> 0 in
  check int "sum evaluates" (50 + 100 + 3) (Ir.affine_eval s env)

let test_affine_add_cancel () =
  let a = Ir.affine [ (2, "i") ] in
  let b = Ir.affine [ (-2, "i") ] in
  let s = Ir.affine_add a b in
  check bool "cancelled to constant" true (Ir.affine_is_const s)

let test_affine_shift () =
  let a = Ir.av ~c:1 "i" in
  let s = Ir.affine_shift a 4 in
  check int "shifted const" 5 s.Ir.const

let test_unit_var () =
  check bool "i+2 is unit" true (Ir.unit_var (Ir.av ~c:2 "i") = Some ("i", 2));
  check bool "2i is not unit" true (Ir.unit_var (Ir.affine [ (2, "i") ]) = None);
  check bool "const is not unit" true (Ir.unit_var (Ir.ac 7) = None)

let test_affine_equal () =
  let a = Ir.affine ~const:1 [ (1, "i"); (2, "j") ] in
  let b = Ir.affine ~const:1 [ (2, "j"); (1, "i") ] in
  check bool "order-insensitive equality" true (Ir.affine_equal a b);
  check bool "different const" false
    (Ir.affine_equal a { b with Ir.const = 2 })

let test_affine_vars () =
  let a = Ir.affine [ (1, "i"); (2, "j") ] in
  check int "two vars" 2 (List.length (Ir.affine_vars a))

(* ------------------------------------------------------------------ *)
(* Program structure helpers                                           *)

let tiny_program ?(n = 8) () =
  let i o = Ir.av ~c:o "i" in
  let mk nid out rhs =
    {
      Ir.nid;
      levels = [ { Ir.lvar = "i"; lo = 1; hi = n - 2; parallel = true } ];
      body = [ Ir.stmt (Ir.aref out [ i 0 ]) rhs ];
    }
  in
  let p =
    {
      Ir.pname = "tiny";
      decls =
        List.map (fun a -> { Ir.aname = a; extents = [ n ] }) [ "a"; "b"; "c" ];
      nests =
        [
          mk "L1" "b" (Ir.Read (Ir.aref "a" [ i 0 ]));
          mk "L2" "c" (Ir.Bin (Ir.Add, Ir.Read (Ir.aref "b" [ i 1 ]),
                               Ir.Read (Ir.aref "b" [ i (-1) ])));
        ];
    }
  in
  Ir.validate p;
  p

let test_nest_accessors () =
  let p = tiny_program () in
  let n2 = Ir.find_nest p "L2" in
  check int "reads" 2 (List.length (Ir.nest_reads n2));
  check int "writes" 1 (List.length (Ir.nest_writes n2));
  check bool "arrays sorted unique" true (Ir.nest_arrays n2 = [ "b"; "c" ]);
  check bool "program arrays" true (Ir.program_arrays p = [ "a"; "b"; "c" ])

let test_nest_iterations () =
  let p = tiny_program ~n:10 () in
  check int "1-D trip count" 8 (Ir.nest_iterations (Ir.find_nest p "L1"))

let test_find_decl_missing () =
  let p = tiny_program () in
  Alcotest.check_raises "unknown array"
    (Invalid_argument "Ir.find_decl: unknown array zz") (fun () ->
      ignore (Ir.find_decl p "zz"))

let test_num_elements () =
  check int "3d elements" 24
    (Ir.num_elements { Ir.aname = "x"; extents = [ 2; 3; 4 ] })

(* ------------------------------------------------------------------ *)
(* Validation                                                          *)

let expect_invalid f =
  match f () with
  | exception Ir.Invalid _ -> ()
  | _ -> Alcotest.fail "expected Ir.Invalid"

let test_validate_dim_mismatch () =
  let p = tiny_program () in
  let bad =
    {
      p with
      Ir.nests =
        [
          {
            Ir.nid = "B";
            levels = [ { Ir.lvar = "i"; lo = 0; hi = 1; parallel = true } ];
            body =
              [
                Ir.stmt
                  (Ir.aref "a" [ Ir.av "i"; Ir.av "i" ])
                  (Ir.Const 0.0);
              ];
          };
        ];
    }
  in
  expect_invalid (fun () -> Ir.validate bad)

let test_validate_unbound_var () =
  let p = tiny_program () in
  let bad =
    {
      p with
      Ir.nests =
        [
          {
            Ir.nid = "B";
            levels = [ { Ir.lvar = "i"; lo = 0; hi = 1; parallel = true } ];
            body = [ Ir.stmt (Ir.aref "a" [ Ir.av "k" ]) (Ir.Const 0.0) ];
          };
        ];
    }
  in
  expect_invalid (fun () -> Ir.validate bad)

let test_validate_duplicate_decl () =
  let d = { Ir.aname = "a"; extents = [ 4 ] } in
  let bad = { Ir.pname = "bad"; decls = [ d; d ]; nests = [] } in
  expect_invalid (fun () -> Ir.validate bad)

let test_validate_empty_range () =
  let bad =
    {
      Ir.pname = "bad";
      decls = [ { Ir.aname = "a"; extents = [ 4 ] } ];
      nests =
        [
          {
            Ir.nid = "B";
            levels = [ { Ir.lvar = "i"; lo = 3; hi = 1; parallel = true } ];
            body = [ Ir.stmt (Ir.aref "a" [ Ir.av "i" ]) (Ir.Const 0.0) ];
          };
        ];
    }
  in
  expect_invalid (fun () -> Ir.validate bad)

let test_validate_duplicate_vars () =
  let bad =
    {
      Ir.pname = "bad";
      decls = [ { Ir.aname = "a"; extents = [ 4; 4 ] } ];
      nests =
        [
          {
            Ir.nid = "B";
            levels =
              [
                { Ir.lvar = "i"; lo = 0; hi = 1; parallel = true };
                { Ir.lvar = "i"; lo = 0; hi = 1; parallel = true };
              ];
            body =
              [ Ir.stmt (Ir.aref "a" [ Ir.av "i"; Ir.av "i" ]) (Ir.Const 0.0) ];
          };
        ];
    }
  in
  expect_invalid (fun () -> Ir.validate bad)

let test_validate_guard_unbound () =
  let bad =
    {
      Ir.pname = "bad";
      decls = [ { Ir.aname = "a"; extents = [ 4 ] } ];
      nests =
        [
          {
            Ir.nid = "B";
            levels = [ { Ir.lvar = "i"; lo = 0; hi = 1; parallel = true } ];
            body =
              [
                Ir.stmt ~guard:[ ("q", 0, 1) ]
                  (Ir.aref "a" [ Ir.av "i" ])
                  (Ir.Const 0.0);
              ];
          };
        ];
    }
  in
  expect_invalid (fun () -> Ir.validate bad)

(* ------------------------------------------------------------------ *)
(* Pretty-printing                                                     *)

let test_pp_affine () =
  let s = Fmt.str "%a" Ir.pp_affine (Ir.av ~c:(-1) "i") in
  check string "i-1" "i-1" s;
  let s = Fmt.str "%a" Ir.pp_affine (Ir.affine ~const:2 [ (2, "i"); (1, "j") ]) in
  check string "2i+j+2" "2*i+j+2" s;
  check string "const" "7" (Fmt.str "%a" Ir.pp_affine (Ir.ac 7))

let test_pp_expr_precedence () =
  let e =
    Ir.Bin
      ( Ir.Mul,
        Ir.Bin (Ir.Add, Ir.Const 1.0, Ir.Const 2.0),
        Ir.Const 3.0 )
  in
  check string "parenthesised" "(1 + 2) * 3" (Fmt.str "%a" Ir.pp_expr e)

let test_pp_program_contains () =
  let p = tiny_program () in
  let s = Ir.program_to_string p in
  check bool "has doall" true
    (Tutil.contains s "doall (i = 1; i <= 6; i++)");
  check bool "has stencil" true (Tutil.contains s "b[i+1] + b[i-1]")

let test_pp_guard () =
  let st =
    Ir.stmt ~guard:[ ("i", 2, 5) ] (Ir.aref "a" [ Ir.av "i" ]) (Ir.Const 1.0)
  in
  let s = Fmt.str "%a" Ir.pp_stmt st in
  check bool "guard printed" true
    (Tutil.contains s "if (2 <= i && i <= 5)")

(* ------------------------------------------------------------------ *)
(* Interpreter                                                         *)

let test_interp_runs () =
  let p = tiny_program ~n:10 () in
  let st = Interp.run p in
  let b = Interp.find_array st "b" and a = Interp.find_array st "a" in
  for i = 1 to 8 do
    check (Alcotest.float 0.0) "copy" a.(i) b.(i)
  done

let test_interp_stencil_value () =
  let p = tiny_program ~n:10 () in
  let st = Interp.run p in
  let b = Interp.find_array st "b" and c = Interp.find_array st "c" in
  check (Alcotest.float 0.0) "c = b[i+1]+b[i-1]" (b.(4) +. b.(2)) c.(3)

let test_interp_deterministic () =
  let p = Lf_kernels.Jacobi.program ~n:16 () in
  let s1 = Interp.run p and s2 = Interp.run p in
  check bool "bit identical" true (Interp.equal s1 s2)

let test_interp_diff_reports () =
  let p = tiny_program () in
  let s1 = Interp.run p in
  let s2 = Interp.run p in
  (Interp.find_array s2 "c").(3) <- 42.0;
  (match Interp.diff s1 s2 with
  | Some (name, idx, _, _) ->
    check string "array name" "c" name;
    check int "index" 3 idx
  | None -> Alcotest.fail "expected diff");
  check bool "not equal" false (Interp.equal s1 s2)

let test_interp_bounds_check () =
  let bad =
    {
      Ir.pname = "oob";
      decls = [ { Ir.aname = "a"; extents = [ 4 ] } ];
      nests =
        [
          {
            Ir.nid = "B";
            levels = [ { Ir.lvar = "i"; lo = 0; hi = 3; parallel = true } ];
            body =
              [
                Ir.stmt
                  (Ir.aref "a" [ Ir.av "i" ])
                  (Ir.Read (Ir.aref "a" [ Ir.av ~c:1 "i" ]));
              ];
          };
        ];
    }
  in
  (match Interp.run bad with
  | exception Interp.Out_of_bounds _ -> ()
  | _ -> Alcotest.fail "expected Out_of_bounds")

let test_guard_execution () =
  let n = 8 in
  let p =
    {
      Ir.pname = "guarded";
      decls = [ { Ir.aname = "a"; extents = [ n ] } ];
      nests =
        [
          {
            Ir.nid = "G";
            levels = [ { Ir.lvar = "i"; lo = 0; hi = n - 1; parallel = true } ];
            body =
              [
                Ir.stmt ~guard:[ ("i", 2, 4) ]
                  (Ir.aref "a" [ Ir.av "i" ])
                  (Ir.Const 9.0);
              ];
          };
        ];
    }
  in
  Ir.validate p;
  let st = Interp.run p in
  let a = Interp.find_array st "a" in
  for i = 0 to n - 1 do
    if i >= 2 && i <= 4 then check (Alcotest.float 0.0) "guarded in" 9.0 a.(i)
    else
      check bool "guarded out untouched" true (a.(i) <> 9.0)
  done

let test_alias_init () =
  (* arrays named with a double-underscore suffix share the base
     array's initial values *)
  check (Alcotest.float 0.0) "alias init"
    (Interp.default_init "za" 17)
    (Interp.default_init "za__rep0_n2" 17);
  check (Alcotest.float 0.0) "copy alias"
    (Interp.default_init "zr" 3)
    (Interp.default_init "zr__copy" 3);
  check bool "distinct arrays differ somewhere" true
    (List.exists
       (fun k -> Interp.default_init "za" k <> Interp.default_init "zb" k)
       [ 0; 1; 2; 3; 4; 5 ])

let test_checksum_stable () =
  let p = tiny_program () in
  let s1 = Interp.run p and s2 = Interp.run p in
  check (Alcotest.float 0.0) "checksums equal" (Interp.checksum s1)
    (Interp.checksum s2)

let suite =
  [
    ("affine make", `Quick, test_affine_make);
    ("affine eval", `Quick, test_affine_eval);
    ("affine add", `Quick, test_affine_add);
    ("affine add cancels", `Quick, test_affine_add_cancel);
    ("affine shift", `Quick, test_affine_shift);
    ("unit var", `Quick, test_unit_var);
    ("affine equal", `Quick, test_affine_equal);
    ("affine vars", `Quick, test_affine_vars);
    ("nest accessors", `Quick, test_nest_accessors);
    ("nest iterations", `Quick, test_nest_iterations);
    ("find_decl missing", `Quick, test_find_decl_missing);
    ("num elements", `Quick, test_num_elements);
    ("validate dim mismatch", `Quick, test_validate_dim_mismatch);
    ("validate unbound var", `Quick, test_validate_unbound_var);
    ("validate duplicate decl", `Quick, test_validate_duplicate_decl);
    ("validate empty range", `Quick, test_validate_empty_range);
    ("validate duplicate vars", `Quick, test_validate_duplicate_vars);
    ("validate guard unbound", `Quick, test_validate_guard_unbound);
    ("pp affine", `Quick, test_pp_affine);
    ("pp expr precedence", `Quick, test_pp_expr_precedence);
    ("pp program", `Quick, test_pp_program_contains);
    ("pp guard", `Quick, test_pp_guard);
    ("interp runs", `Quick, test_interp_runs);
    ("interp stencil value", `Quick, test_interp_stencil_value);
    ("interp deterministic", `Quick, test_interp_deterministic);
    ("interp diff reports", `Quick, test_interp_diff_reports);
    ("interp bounds check", `Quick, test_interp_bounds_check);
    ("guard execution", `Quick, test_guard_execution);
    ("alias init", `Quick, test_alias_init);
    ("checksum stable", `Quick, test_checksum_stable);
  ]
