(* Tests for the cache simulator. *)

module Cache = Lf_cache.Cache

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int

let small = { Cache.capacity = 1024; line = 64; assoc = 1 }
let small2 = { Cache.capacity = 1024; line = 64; assoc = 2 }

let test_create_invalid () =
  List.iter
    (fun cfg ->
      match Cache.create cfg with
      | exception Invalid_argument _ -> ()
      | _ -> Alcotest.fail "expected Invalid_argument")
    [
      { Cache.capacity = 0; line = 64; assoc = 1 };
      { Cache.capacity = 1024; line = 48; assoc = 1 };
      { Cache.capacity = 1000; line = 64; assoc = 1 };
    ]

let test_cold_miss_then_hit () =
  let c = Cache.create small in
  check bool "first access misses" false (Cache.access c 0);
  check bool "same line hits" true (Cache.access c 32);
  check bool "next line misses" false (Cache.access c 64);
  let s = Cache.stats c in
  check int "hits" 1 s.Cache.s_hits;
  check int "misses" 2 s.Cache.s_misses;
  check int "cold" 2 s.Cache.s_cold

let test_sequential_scan_misses () =
  (* scanning N bytes misses exactly N/line times *)
  let c = Cache.create small in
  let bytes = 8192 in
  for a = 0 to (bytes / 8) - 1 do
    ignore (Cache.access c (a * 8))
  done;
  let s = Cache.stats c in
  check int "one miss per line" (bytes / small.Cache.line) s.Cache.s_misses

let test_direct_mapped_conflict () =
  (* two addresses capacity apart conflict in a direct-mapped cache *)
  let c = Cache.create small in
  ignore (Cache.access c 0);
  ignore (Cache.access c 1024);
  check bool "0 evicted" false (Cache.access c 0);
  check bool "1024 evicted" false (Cache.access c 1024)

let test_assoc_absorbs_conflict () =
  (* same addresses coexist in a 2-way cache *)
  let c = Cache.create small2 in
  ignore (Cache.access c 0);
  ignore (Cache.access c 512);
  (* span = 512 for 2-way 1024B *)
  check bool "0 still cached" true (Cache.access c 0);
  check bool "512 still cached" true (Cache.access c 512)

let test_lru_eviction () =
  let c = Cache.create small2 in
  ignore (Cache.access c 0);
  (* way 1 *)
  ignore (Cache.access c 512);
  (* way 2 *)
  ignore (Cache.access c 0);
  (* touch 0: 512 is now LRU *)
  ignore (Cache.access c 1024);
  (* evicts 512 *)
  check bool "0 survives (MRU)" true (Cache.access c 0);
  check bool "512 evicted (LRU)" false (Cache.access c 512)

let test_fully_within_capacity_no_conflict () =
  (* working set = capacity: after the cold pass, everything hits *)
  let c = Cache.create small2 in
  for pass = 1 to 3 do
    for l = 0 to (small2.Cache.capacity / small2.Cache.line) - 1 do
      ignore (Cache.access c (l * small2.Cache.line));
      ignore pass
    done
  done;
  let s = Cache.stats c in
  check int "only cold misses" (small2.Cache.capacity / small2.Cache.line)
    s.Cache.s_misses

let test_conflict_classification () =
  let c = Cache.create small in
  ignore (Cache.access c 0);
  ignore (Cache.access c 1024);
  ignore (Cache.access c 0);
  (* conflict miss: already seen *)
  let s = Cache.stats c in
  check int "cold" 2 s.Cache.s_cold;
  check int "conflict" 1 s.Cache.s_conflict_capacity

let test_reset () =
  let c = Cache.create small in
  ignore (Cache.access c 0);
  Cache.reset c;
  let s = Cache.stats c in
  check int "no hits" 0 s.Cache.s_hits;
  check int "no misses" 0 s.Cache.s_misses;
  check bool "cold again after reset" false (Cache.access c 0)

let test_miss_rate () =
  let c = Cache.create small in
  ignore (Cache.access c 0);
  ignore (Cache.access c 8);
  check (Alcotest.float 1e-9) "rate 0.5" 0.5 (Cache.miss_rate c);
  check int "references" 2 (Cache.references c)

let test_assoc_monotone () =
  (* more associativity never increases misses on this trace *)
  let trace = List.init 400 (fun i -> (i * 64 * 5) mod 4096) in
  let misses assoc =
    let c = Cache.create { Cache.capacity = 1024; line = 64; assoc } in
    List.iter (fun a -> ignore (Cache.access c a)) trace;
    (Cache.stats c).Cache.s_misses
  in
  let m1 = misses 1 and m2 = misses 2 and m4 = misses 4 in
  check bool "assoc 2 <= 1" true (m2 <= m1);
  check bool "assoc 4 <= 2" true (m4 <= m2)

let test_paper_cache_presets () =
  check int "ksr2 256KB" (256 * 1024) Cache.ksr2_cache.Cache.capacity;
  check int "ksr2 2-way" 2 Cache.ksr2_cache.Cache.assoc;
  check int "convex 1MB" (1024 * 1024) Cache.convex_cache.Cache.capacity;
  check int "convex direct" 1 Cache.convex_cache.Cache.assoc

let suite =
  [
    ("create invalid", `Quick, test_create_invalid);
    ("cold miss then hit", `Quick, test_cold_miss_then_hit);
    ("sequential scan misses", `Quick, test_sequential_scan_misses);
    ("direct-mapped conflict", `Quick, test_direct_mapped_conflict);
    ("associativity absorbs conflict", `Quick, test_assoc_absorbs_conflict);
    ("LRU eviction", `Quick, test_lru_eviction);
    ("within capacity no conflicts", `Quick, test_fully_within_capacity_no_conflict);
    ("conflict classification", `Quick, test_conflict_classification);
    ("reset", `Quick, test_reset);
    ("miss rate", `Quick, test_miss_rate);
    ("associativity monotone", `Quick, test_assoc_monotone);
    ("paper cache presets", `Quick, test_paper_cache_presets);
  ]
