(* Tests for the cache simulator. *)

module Cache = Lf_cache.Cache

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int

let small = { Cache.capacity = 1024; line = 64; assoc = 1 }
let small2 = { Cache.capacity = 1024; line = 64; assoc = 2 }

let test_create_invalid () =
  List.iter
    (fun cfg ->
      match Cache.create cfg with
      | exception Invalid_argument _ -> ()
      | _ -> Alcotest.fail "expected Invalid_argument")
    [
      { Cache.capacity = 0; line = 64; assoc = 1 };
      { Cache.capacity = 1024; line = 48; assoc = 1 };
      { Cache.capacity = 1000; line = 64; assoc = 1 };
    ]

let test_cold_miss_then_hit () =
  let c = Cache.create small in
  check bool "first access misses" false (Cache.access c 0);
  check bool "same line hits" true (Cache.access c 32);
  check bool "next line misses" false (Cache.access c 64);
  let s = Cache.stats c in
  check int "hits" 1 s.Cache.s_hits;
  check int "misses" 2 s.Cache.s_misses;
  check int "cold" 2 s.Cache.s_cold

let test_sequential_scan_misses () =
  (* scanning N bytes misses exactly N/line times *)
  let c = Cache.create small in
  let bytes = 8192 in
  for a = 0 to (bytes / 8) - 1 do
    ignore (Cache.access c (a * 8))
  done;
  let s = Cache.stats c in
  check int "one miss per line" (bytes / small.Cache.line) s.Cache.s_misses

let test_direct_mapped_conflict () =
  (* two addresses capacity apart conflict in a direct-mapped cache *)
  let c = Cache.create small in
  ignore (Cache.access c 0);
  ignore (Cache.access c 1024);
  check bool "0 evicted" false (Cache.access c 0);
  check bool "1024 evicted" false (Cache.access c 1024)

let test_assoc_absorbs_conflict () =
  (* same addresses coexist in a 2-way cache *)
  let c = Cache.create small2 in
  ignore (Cache.access c 0);
  ignore (Cache.access c 512);
  (* span = 512 for 2-way 1024B *)
  check bool "0 still cached" true (Cache.access c 0);
  check bool "512 still cached" true (Cache.access c 512)

let test_lru_eviction () =
  let c = Cache.create small2 in
  ignore (Cache.access c 0);
  (* way 1 *)
  ignore (Cache.access c 512);
  (* way 2 *)
  ignore (Cache.access c 0);
  (* touch 0: 512 is now LRU *)
  ignore (Cache.access c 1024);
  (* evicts 512 *)
  check bool "0 survives (MRU)" true (Cache.access c 0);
  check bool "512 evicted (LRU)" false (Cache.access c 512)

let test_fully_within_capacity_no_conflict () =
  (* working set = capacity: after the cold pass, everything hits *)
  let c = Cache.create small2 in
  for pass = 1 to 3 do
    for l = 0 to (small2.Cache.capacity / small2.Cache.line) - 1 do
      ignore (Cache.access c (l * small2.Cache.line));
      ignore pass
    done
  done;
  let s = Cache.stats c in
  check int "only cold misses" (small2.Cache.capacity / small2.Cache.line)
    s.Cache.s_misses

let test_conflict_classification () =
  let c = Cache.create small in
  ignore (Cache.access c 0);
  ignore (Cache.access c 1024);
  ignore (Cache.access c 0);
  (* conflict miss: already seen *)
  let s = Cache.stats c in
  check int "cold" 2 s.Cache.s_cold;
  check int "conflict" 1 s.Cache.s_conflict_capacity

let test_reset () =
  let c = Cache.create small in
  ignore (Cache.access c 0);
  Cache.reset c;
  let s = Cache.stats c in
  check int "no hits" 0 s.Cache.s_hits;
  check int "no misses" 0 s.Cache.s_misses;
  check bool "cold again after reset" false (Cache.access c 0)

let test_miss_rate () =
  let c = Cache.create small in
  ignore (Cache.access c 0);
  ignore (Cache.access c 8);
  check (Alcotest.float 1e-9) "rate 0.5" 0.5 (Cache.miss_rate c);
  check int "references" 2 (Cache.references c)

let test_assoc_monotone () =
  (* more associativity never increases misses on this trace *)
  let trace = List.init 400 (fun i -> (i * 64 * 5) mod 4096) in
  let misses assoc =
    let c = Cache.create { Cache.capacity = 1024; line = 64; assoc } in
    List.iter (fun a -> ignore (Cache.access c a)) trace;
    (Cache.stats c).Cache.s_misses
  in
  let m1 = misses 1 and m2 = misses 2 and m4 = misses 4 in
  check bool "assoc 2 <= 1" true (m2 <= m1);
  check bool "assoc 4 <= 2" true (m4 <= m2)

let test_paper_cache_presets () =
  check int "ksr2 256KB" (256 * 1024) Cache.ksr2_cache.Cache.capacity;
  check int "ksr2 2-way" 2 Cache.ksr2_cache.Cache.assoc;
  check int "convex 1MB" (1024 * 1024) Cache.convex_cache.Cache.capacity;
  check int "convex direct" 1 Cache.convex_cache.Cache.assoc


(* --- run-tier primitives: equivalence with the scalar protocol ------ *)

let stats_equal label a b =
  let sa = Cache.stats a and sb = Cache.stats b in
  check int (label ^ " hits") sa.Cache.s_hits sb.Cache.s_hits;
  check int (label ^ " misses") sa.Cache.s_misses sb.Cache.s_misses;
  check int (label ^ " cold") sa.Cache.s_cold sb.Cache.s_cold

(* After driving two caches through supposedly-equivalent protocols,
   probe every line of a window once on both: identical LRU state yields
   identical hit patterns (and identical state afterwards, since hits on
   the same lines perturb both equally). *)
let probe_equal label a b ~lines =
  for l = 0 to lines - 1 do
    let addr = l * 64 in
    check bool
      (Printf.sprintf "%s probe line %d" label l)
      (Cache.access a addr) (Cache.access b addr)
  done;
  stats_equal (label ^ " post-probe") a b

let scalar_run c ~addr ~stride ~n =
  for i = 0 to n - 1 do
    ignore (Cache.access c (addr + (i * stride)))
  done

let run_geometries =
  [
    ("dm", small);
    ("2way", small2);
    ("4way", { Cache.capacity = 2048; line = 64; assoc = 4 });
    (* 12 sets: non-power-of-two set count exercises the mod indexing *)
    ("np2", { Cache.capacity = 768; line = 64; assoc = 1 });
  ]

let test_access_run_equiv () =
  List.iter
    (fun (gname, cfg) ->
      let batched = Cache.create cfg and scalar = Cache.create cfg in
      (* deterministic mix of strides and lengths, positive and negative,
         same-line dwell and line-crossing, plus conflict-heavy strides *)
      let cases =
        [
          (0, 8, 200);
          (40, 4, 100);
          (8192, -8, 300);
          (3000, 24, 77);
          (cfg.Cache.capacity, 64, 50);
          (64, cfg.Cache.capacity, 9);
          (* whole-cache conflict loop *)
          (128, 0, 1);
          (5, 1, 130);
        ]
      in
      List.iter
        (fun (addr, stride, n) ->
          Cache.access_run batched ~addr ~stride ~n;
          scalar_run scalar ~addr ~stride ~n;
          stats_equal (Printf.sprintf "%s run@%d" gname addr) batched scalar)
        cases;
      probe_equal gname batched scalar ~lines:40)
    run_geometries

let test_access_run_classified_equiv () =
  let cfg = small in
  let batched = Cache.create cfg and scalar = Cache.create cfg in
  let groups = ref 0 and trailing_total = ref 0 in
  Cache.access_run_classified batched ~addr:16 ~stride:8 ~n:100
    ~f:(fun cl trailing ->
      incr groups;
      trailing_total := !trailing_total + trailing;
      check bool "group head is a classified access" true
        (cl.Cache.cl_line >= 0 || cl.Cache.cl_line < 0));
  scalar_run scalar ~addr:16 ~stride:8 ~n:100;
  stats_equal "classified run" batched scalar;
  (* every access is either a reported group head or coalesced trailing *)
  check int "groups + trailing = n" 100 (!groups + !trailing_total)

let test_hit_run_equiv () =
  List.iter
    (fun (gname, cfg) ->
      let batched = Cache.create cfg and scalar = Cache.create cfg in
      (* make three distinct lines resident on both *)
      let addrs = [| 0; 64; 192 |] in
      Array.iter
        (fun a ->
          ignore (Cache.access batched a);
          ignore (Cache.access scalar a))
        addrs;
      Cache.hit_run batched ~addrs ~k:3 ~m:5;
      for _ = 1 to 5 do
        Array.iter (fun a -> ignore (Cache.access scalar a)) addrs
      done;
      stats_equal (gname ^ " hit_run") batched scalar;
      probe_equal (gname ^ " hit_run") batched scalar ~lines:40)
    run_geometries

let test_hit_run_requires_resident () =
  let c = Cache.create small in
  match Cache.hit_run c ~addrs:[| 0 |] ~k:1 ~m:1 with
  | () -> Alcotest.fail "hit_run on a non-resident line must raise"
  | exception Invalid_argument _ -> ()

let test_repeat_run_equiv () =
  (* direct-mapped thrash: two lines mapping to the same set, plus a
     hitting line; iteration outcomes repeat verbatim from the fixed
     point, which is what repeat_run replays in closed form *)
  List.iter
    (fun (gname, cfg) ->
      let batched = Cache.create cfg and scalar = Cache.create cfg in
      let sets = cfg.Cache.capacity / cfg.Cache.line / cfg.Cache.assoc in
      let addrs = [| 0; sets * 64; 128 |] in
      let iter c = Array.map (fun a -> Cache.access c a) addrs in
      (* two scalar iterations on both: the second runs from the fixed
         point and captures the steady per-reference outcomes *)
      ignore (iter batched);
      ignore (iter scalar);
      let hits = iter batched in
      ignore (iter scalar);
      Cache.repeat_run batched ~addrs ~hits ~k:3 ~m:7;
      for _ = 1 to 7 do
        ignore (iter scalar)
      done;
      stats_equal (gname ^ " repeat_run") batched scalar;
      probe_equal (gname ^ " repeat_run") batched scalar ~lines:40)
    [ ("dm", small); ("np2", { Cache.capacity = 768; line = 64; assoc = 1 }) ]

let test_repeat_run_assoc_guard () =
  let c = Cache.create small2 in
  ignore (Cache.access c 0);
  match Cache.repeat_run c ~addrs:[| 0 |] ~hits:[| true |] ~k:1 ~m:1 with
  | () -> Alcotest.fail "repeat_run on assoc>1 must raise"
  | exception Invalid_argument _ -> ()

(* --- footprint bitset vs hashtbl cold tracking ---------------------- *)

let test_footprint_bitset_equiv () =
  (* same trace on a bitset-tracked cache and a hashtbl-tracked one:
     identical statistics, including cold-miss classification *)
  let with_bitset = Cache.create ~footprint:8192 small in
  let with_hash = Cache.create small in
  for i = 0 to 999 do
    let addr = i * 136 mod 8192 in
    ignore (Cache.access with_bitset addr);
    ignore (Cache.access with_hash addr)
  done;
  stats_equal "bitset vs hashtbl" with_bitset with_hash

let test_footprint_overflow_fallback () =
  (* addresses beyond the declared footprint fall back to the hashtbl
     path and must still classify cold misses exactly once *)
  let c = Cache.create ~footprint:1024 small in
  ignore (Cache.access c 100_000);
  ignore (Cache.access c 200_000);
  ignore (Cache.access c 100_000);
  ignore (Cache.access c 200_000);
  let s = Cache.stats c in
  check int "cold once per line" 2 s.Cache.s_cold;
  check int "re-access hits" 2 s.Cache.s_hits;
  (* in-footprint lines still tracked by the bitset *)
  ignore (Cache.access c 0);
  ignore (Cache.access c 0);
  let s = Cache.stats c in
  check int "bitset cold" 3 s.Cache.s_cold

let suite =
  [
    ("create invalid", `Quick, test_create_invalid);
    ("cold miss then hit", `Quick, test_cold_miss_then_hit);
    ("sequential scan misses", `Quick, test_sequential_scan_misses);
    ("direct-mapped conflict", `Quick, test_direct_mapped_conflict);
    ("associativity absorbs conflict", `Quick, test_assoc_absorbs_conflict);
    ("LRU eviction", `Quick, test_lru_eviction);
    ("within capacity no conflicts", `Quick, test_fully_within_capacity_no_conflict);
    ("conflict classification", `Quick, test_conflict_classification);
    ("reset", `Quick, test_reset);
    ("miss rate", `Quick, test_miss_rate);
    ("associativity monotone", `Quick, test_assoc_monotone);
    ("paper cache presets", `Quick, test_paper_cache_presets);
    ("access_run equivalence", `Quick, test_access_run_equiv);
    ("access_run_classified equivalence", `Quick, test_access_run_classified_equiv);
    ("hit_run equivalence", `Quick, test_hit_run_equiv);
    ("hit_run requires residency", `Quick, test_hit_run_requires_resident);
    ("repeat_run equivalence", `Quick, test_repeat_run_equiv);
    ("repeat_run direct-mapped guard", `Quick, test_repeat_run_assoc_guard);
    ("footprint bitset equivalence", `Quick, test_footprint_bitset_equiv);
    ("footprint overflow fallback", `Quick, test_footprint_overflow_fallback);
  ]
