(* Tests for source emission (Figures 11, 12, 16) and substitution. *)

module Ir = Lf_ir.Ir
module Codegen = Lf_core.Codegen
module Derive = Lf_core.Derive

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int

let fig9 () = Tutil.chain_program ~lo:2 ~hi:30 [ [ 0 ]; [ 1; -1 ]; [ 1; -1 ] ]

let test_subst_affine () =
  let a = Ir.affine ~const:1 [ (2, "i"); (1, "j") ] in
  let s = Codegen.subst_affine a "i" (-3) in
  check int "const shifted by coeff*delta" (1 - 6) s.Ir.const

let test_subst_stmt_guard () =
  let st =
    Ir.stmt ~guard:[ ("i", 2, 5); ("j", 0, 9) ]
      (Ir.aref "a" [ Ir.av "i" ])
      (Ir.Const 1.0)
  in
  let st' = Codegen.subst_stmt st "i" 2 in
  check bool "i guard shifted" true (List.mem ("i", 0, 3) st'.Ir.guard);
  check bool "j guard untouched" true (List.mem ("j", 0, 9) st'.Ir.guard)

let test_subst_expr_reads () =
  let e = Ir.Read (Ir.aref "a" [ Ir.av ~c:1 "i" ]) in
  match Codegen.subst_expr e "i" (-1) with
  | Ir.Read r ->
    check int "offset now 0" 0 (List.hd r.Ir.index).Ir.const
  | _ -> Alcotest.fail "expected read"

let test_direct_method_guards () =
  let p = fig9 () in
  let d = Derive.of_program ~depth:1 p in
  let s = Codegen.direct_to_string p d in
  check bool "guard for shift 1" true (Tutil.contains s "if (i >= istart+1)");
  check bool "guard for shift 2" true (Tutil.contains s "if (i >= istart+2)");
  check bool "rewritten subscript" true (Tutil.contains s "a1[i] + a1[i-2]")

let test_strip_mined_structure () =
  let p = fig9 () in
  let d = Derive.of_program ~depth:1 p in
  let s = Codegen.strip_mined_to_string ~strip:8 p d in
  check bool "control loop" true (Tutil.contains s "ii += 8");
  check bool "barrier" true (Tutil.contains s "BARRIER");
  check bool "shifted inner bound" true
    (Tutil.contains s "max(ii-1, istart+2)");
  check bool "peel-skip lower bound L3" true
    (Tutil.contains s "max(ii-2, istart+4)");
  (* the post-barrier tails of Figure 12 *)
  check bool "tail L2" true (Tutil.contains s "i = iend; i <= iend+1");
  check bool "tail L3" true (Tutil.contains s "i = iend-1; i <= iend+2")

let test_strip_mined_unshifted_loop_plain () =
  let p = fig9 () in
  let d = Derive.of_program ~depth:1 p in
  let s = Codegen.strip_mined_to_string ~strip:4 p d in
  check bool "first loop unmodified bounds" true
    (Tutil.contains s "for (i = ii; i <= min(ii+3, iend); i++)")

let test_multidim_prologue () =
  let p = Lf_kernels.Jacobi.program ~n:32 () in
  let d = Derive.of_program ~depth:2 p in
  let s = Codegen.multidim_to_string ~strip:8 p d in
  check bool "ifpeel flag" true (Tutil.contains s "ifpeel");
  check bool "jppeel flag" true (Tutil.contains s "jppeel");
  check bool "barrier" true (Tutil.contains s "BARRIER");
  check bool "peeled boxes emitted" true (Tutil.contains s "peeled boxes")

let test_multidim_depth1_works () =
  let p = fig9 () in
  let d = Derive.of_program ~depth:1 p in
  let s = Codegen.multidim_to_string ~strip:8 p d in
  check bool "emits" true (String.length s > 0)

let test_direct_rejects_depth2 () =
  let p = Lf_kernels.Jacobi.program ~n:16 () in
  let d = Derive.of_program ~depth:2 p in
  (match Codegen.direct_to_string p d with
  | exception Codegen.Unsupported _ -> ()
  | _ -> Alcotest.fail "expected Codegen.Unsupported")

let test_strip_rejects_depth2 () =
  let p = Lf_kernels.Jacobi.program ~n:16 () in
  let d = Derive.of_program ~depth:2 p in
  (match Codegen.strip_mined_to_string p d with
  | exception Codegen.Unsupported _ -> ()
  | _ -> Alcotest.fail "expected Codegen.Unsupported")

(* Historically the 1-D emitters accepted a multidim program with a
   depth-1 derivation and printed code whose inner loop variables were
   never bound.  The direct method now refuses; the strip-mined method
   dispatches to the multidim renderer, which emits the inner loops. *)
let test_direct_rejects_multidim_program () =
  let p = Lf_kernels.Filter.program ~rows:16 ~cols:12 () in
  let d = Derive.of_program ~depth:1 p in
  (match Codegen.direct_to_string p d with
  | exception Codegen.Unsupported m ->
    check bool "error names the cause" true
      (Tutil.contains m "levels below the fusion depth")
  | _ -> Alcotest.fail "expected Codegen.Unsupported")

let test_strip_mined_dispatches_multidim () =
  let p = Lf_kernels.Filter.program ~rows:16 ~cols:12 () in
  let d = Derive.of_program ~depth:1 p in
  let s = Codegen.strip_mined_to_string ~strip:8 p d in
  check bool "inner loop variable bound" true (Tutil.contains s "for (j = ");
  check bool "multidim renderer used" true
    (Tutil.contains s "multidimensional shift-and-peel");
  check bool "barrier emitted" true (Tutil.contains s "BARRIER")

let suite =
  [
    ("subst affine", `Quick, test_subst_affine);
    ("subst stmt guard", `Quick, test_subst_stmt_guard);
    ("subst expr reads", `Quick, test_subst_expr_reads);
    ("direct method guards", `Quick, test_direct_method_guards);
    ("strip-mined structure (Fig 12)", `Quick, test_strip_mined_structure);
    ("strip-mined unshifted loop", `Quick, test_strip_mined_unshifted_loop_plain);
    ("multidim prologue (Fig 16)", `Quick, test_multidim_prologue);
    ("multidim depth-1", `Quick, test_multidim_depth1_works);
    ("direct rejects depth 2", `Quick, test_direct_rejects_depth2);
    ("strip-mined rejects depth 2", `Quick, test_strip_rejects_depth2);
    ("direct rejects multidim program", `Quick,
     test_direct_rejects_multidim_program);
    ("strip-mined dispatches multidim", `Quick,
     test_strip_mined_dispatches_multidim);
  ]
