(* The unified request-options record (Lf_batch.Run_opts) and its
   consumers.

   Contracts under test:
   - the legacy optional-argument surfaces (Batch.run, Batch.run_one,
     Exec.run_request) are bit-identical to the Run_opts forms
     (Batch.run_with, Batch.run_one_with, Exec.run_opts) — the
     deprecation promise in their docs;
   - store policies resolve to memoised handles (one handle per root,
     physical equality), cold policies recompute but still persist;
   - of_env parses the documented variables and rejects malformed
     values with an error naming the variable, never a silent
     fallback. *)

module Ir = Lf_ir.Ir
module Partition = Lf_core.Partition
module Machine = Lf_machine.Machine
module Exec = Lf_machine.Exec
module Sim = Lf_machine.Sim
module Batch = Lf_batch.Batch
module Store = Lf_batch.Batch.Store
module Run_opts = Lf_batch.Run_opts
module Obs = Lf_obs.Obs

let results_identical (a : Exec.result) (b : Exec.result) =
  a.Exec.cycles = b.Exec.cycles
  && a.Exec.phase_cycles = b.Exec.phase_cycles
  && a.Exec.barrier_cycles = b.Exec.barrier_cycles
  && a.Exec.total_refs = b.Exec.total_refs
  && a.Exec.total_misses = b.Exec.total_misses
  && a.Exec.cold_misses = b.Exec.cold_misses
  && a.Exec.tlb_misses = b.Exec.tlb_misses
  && a.Exec.proc_misses = b.Exec.proc_misses

let sample_request ?(mode = Sim.Run_compressed) ?(n = 32) ?(nprocs = 3) () =
  let p = Lf_kernels.Ll18.program ~n () in
  let layout = Partition.contiguous p.Ir.decls in
  Sim.fused ~strip:6 ~layout ~mode ~machine:Machine.convex ~nprocs p

let scratch_dir () =
  let path = Filename.temp_file "lf_run_opts_test" "" in
  Sys.remove path;
  path

(* ------------------------------------------------------------------ *)

let test_defaults_and_combinators () =
  let open Run_opts in
  Alcotest.(check bool) "default engine is Run_compressed" true
    (default.engine = Sim.Run_compressed);
  Alcotest.(check bool) "default store is warm default root" true
    (default.store = Store_in None);
  Alcotest.(check bool) "default jobs deferred" true (default.jobs = None);
  Alcotest.(check int) "with_jobs clamps at 1" 1
    (jobs_or_default (with_jobs 0 default));
  Alcotest.(check int) "with_jobs carries through" 5
    (jobs_or_default (with_jobs 5 default));
  Alcotest.(check bool) "cold flips Store_in" true
    (is_cold (cold default));
  Alcotest.(check bool) "cold keeps the root" true
    ((cold (with_store (Store_in (Some "/tmp/r")) default)).store
    = Store_cold (Some "/tmp/r"));
  Alcotest.(check bool) "cold of Store_off stays off" true
    ((cold (without_store default)).store = Store_off);
  Alcotest.(check bool) "without_store disables" false
    (store_enabled (without_store default));
  Alcotest.(check bool) "store_root of default is None" true
    (store_root default = None);
  Alcotest.(check bool) "store_root names the root" true
    (store_root (with_store (Store_cold (Some "/tmp/r")) default)
    = Some "/tmp/r");
  let s = Fmt.str "%a" pp (with_timeout 2.5 (with_jobs 3 default)) in
  Alcotest.(check bool) "pp mentions the fields" true
    (Tutil.contains s "engine=runs"
    && Tutil.contains s "jobs=3"
    && Tutil.contains s "timeout=2.5s")

(* ------------------------------------------------------------------ *)
(* Exec.run_opts vs run_request *)

let test_exec_opts_equal_run_request () =
  let req = sample_request () in
  let legacy = Exec.run_request ~jobs:2 req in
  let via_opts =
    Exec.run_opts (Run_opts.exec (Run_opts.with_jobs 2 Run_opts.default)) req
  in
  Alcotest.(check bool) "run_opts bit-identical to run_request" true
    (results_identical legacy via_opts);
  (* the sink carries over through the lowering *)
  let s1 = Obs.create () and s2 = Obs.create () in
  let _ = Exec.run_request ~sink:s1 req in
  let _ =
    Exec.run_opts
      (Run_opts.exec (Run_opts.with_sink s2 Run_opts.default))
      req
  in
  Alcotest.(check bool) "sink totals agree" true
    ((Obs.totals s1).Obs.t_refs = (Obs.totals s2).Obs.t_refs
    && (Obs.totals s1).Obs.t_refs > 0)

(* ------------------------------------------------------------------ *)
(* Batch.run_with vs Batch.run, cold then warm *)

let test_run_with_equals_run () =
  let reqs =
    [ sample_request ~n:24 (); sample_request ~n:28 (); sample_request ~n:24 () ]
  in
  let dir_new = scratch_dir () and dir_old = scratch_dir () in
  let opts =
    Run_opts.make ~store:(Run_opts.Store_in (Some dir_new)) ~jobs:2 ()
  in
  let legacy_store = Store.open_ ~dir:dir_old () in
  let check_pass label (o1, s1) (o2, s2) =
    Alcotest.(check int) (label ^ ": computed agree") s1.Batch.computed
      s2.Batch.computed;
    Alcotest.(check int) (label ^ ": hits agree") s1.Batch.hits s2.Batch.hits;
    Alcotest.(check int) (label ^ ": unique agree") s1.Batch.unique
      s2.Batch.unique;
    Array.iteri
      (fun i (a : Batch.outcome) ->
        let b : Batch.outcome = o2.(i) in
        Alcotest.(check bool) (label ^ ": from_store agrees") a.Batch.from_store
          b.Batch.from_store;
        Alcotest.(check bool) (label ^ ": results bit-identical") true
          (results_identical
             (Result.get_ok a.Batch.result)
             (Result.get_ok b.Batch.result)))
      o1
  in
  (* cold stores: everything computes *)
  check_pass "cold"
    (Batch.run_with opts reqs)
    (Batch.run ~store:legacy_store ~jobs:2 reqs);
  (* warm stores: everything hits *)
  let warm_new = Batch.run_with opts reqs in
  check_pass "warm" warm_new (Batch.run ~store:legacy_store ~jobs:2 reqs);
  Alcotest.(check int) "warm pass is all hits" 2 (snd warm_new).Batch.hits;
  (* a cold policy recomputes against the warmed store *)
  let _, cold_sum = Batch.run_with (Run_opts.cold opts) reqs in
  Alcotest.(check int) "cold policy recomputes" 2 cold_sum.Batch.computed;
  Alcotest.(check int) "cold policy takes no hits" 0 cold_sum.Batch.hits;
  (match Batch.store_of_opts opts with
  | Some st -> ignore (Store.clear st)
  | None -> Alcotest.fail "warm policy resolved no store");
  ignore (Store.clear legacy_store)

let test_run_one_with_equals_run_one () =
  let req = sample_request ~n:24 () in
  let dir_new = scratch_dir () and dir_old = scratch_dir () in
  let opts = Run_opts.make ~store:(Run_opts.Store_in (Some dir_new)) () in
  let legacy_store = Store.open_ ~dir:dir_old () in
  let a = Batch.run_one_with opts req in
  let b = Batch.run_one ~store:legacy_store req in
  Alcotest.(check bool) "run_one_with bit-identical to run_one" true
    (results_identical a b);
  (* both persisted: warm repeats hit *)
  let h0 = Batch.hit_count () in
  let a' = Batch.run_one_with opts req in
  let b' = Batch.run_one ~store:legacy_store req in
  Alcotest.(check int) "both warm repeats hit" (h0 + 2) (Batch.hit_count ());
  Alcotest.(check bool) "warm results bit-identical" true
    (results_identical a' a && results_identical b' b);
  (* Store_off never persists *)
  let dir_off = scratch_dir () in
  let _ = Batch.run_one_with Run_opts.(without_store default) req in
  Alcotest.(check bool) "Store_off leaves no entries" true
    (not (Sys.file_exists dir_off) || Sys.readdir dir_off = [||]);
  (match Batch.store_of_opts opts with
  | Some st -> ignore (Store.clear st)
  | None -> Alcotest.fail "warm policy resolved no store");
  ignore (Store.clear legacy_store)

let test_store_of_opts_memoised () =
  Alcotest.(check bool) "Store_off resolves to None" true
    (Batch.store_of_opts Run_opts.(without_store default) = None);
  let dir = scratch_dir () in
  let h1 = Batch.store_of_opts (Run_opts.make ~store:(Run_opts.Store_in (Some dir)) ()) in
  let h2 = Batch.store_of_opts (Run_opts.make ~store:(Run_opts.Store_in (Some dir)) ()) in
  let h3 = Batch.store_of_opts (Run_opts.make ~store:(Run_opts.Store_cold (Some dir)) ()) in
  (match (h1, h2, h3) with
  | Some s1, Some s2, Some s3 ->
    Alcotest.(check bool) "same root, same handle" true (s1 == s2);
    Alcotest.(check bool) "cold policy shares the handle too" true (s1 == s3)
  | _ -> Alcotest.fail "policy with a root resolved no store");
  let other = scratch_dir () in
  match
    Batch.store_of_opts (Run_opts.make ~store:(Run_opts.Store_in (Some other)) ())
  with
  | Some s4 ->
    Alcotest.(check bool) "different root, different handle" true
      (Some s4 != h1 && Store.dir s4 <> Store.dir (Option.get h1))
  | None -> Alcotest.fail "second root resolved no store"

(* ------------------------------------------------------------------ *)
(* of_env *)

let with_env pairs f =
  List.iter (fun (k, v) -> Unix.putenv k v) pairs;
  Fun.protect
    ~finally:(fun () -> List.iter (fun (k, _) -> Unix.putenv k "") pairs)
    f

let test_of_env () =
  (* a clean environment returns the base unchanged *)
  with_env
    [ ("LF_ENGINE", ""); ("LF_TIMEOUT_S", ""); ("LF_STORE", ""); ("LF_COLD", "") ]
    (fun () ->
      match Run_opts.of_env () with
      | Ok t -> Alcotest.(check bool) "clean env = default" true (t = Run_opts.default)
      | Error e -> Alcotest.fail e);
  with_env
    [ ("LF_ENGINE", "miss-only"); ("LF_TIMEOUT_S", "2.5"); ("LF_COLD", "1") ]
    (fun () ->
      match Run_opts.of_env () with
      | Ok t ->
        Alcotest.(check bool) "LF_ENGINE parsed" true (t.Run_opts.engine = Sim.Miss_only);
        Alcotest.(check bool) "LF_TIMEOUT_S parsed" true
          (t.Run_opts.timeout_s = Some 2.5);
        Alcotest.(check bool) "LF_COLD makes the policy cold" true
          (Run_opts.is_cold t)
      | Error e -> Alcotest.fail e);
  with_env [ ("LF_STORE", "off"); ("LF_COLD", "1") ] (fun () ->
      match Run_opts.of_env () with
      | Ok t ->
        Alcotest.(check bool) "LF_STORE=off wins over LF_COLD" true
          (t.Run_opts.store = Run_opts.Store_off)
      | Error e -> Alcotest.fail e);
  (* jobs is deliberately not read from the environment here *)
  with_env [ ("LF_ENGINE", "full") ] (fun () ->
      match Run_opts.of_env ~base:(Run_opts.make ~jobs:7 ()) () with
      | Ok t ->
        Alcotest.(check bool) "base fields survive" true
          (t.Run_opts.jobs = Some 7 && t.Run_opts.engine = Sim.Full)
      | Error e -> Alcotest.fail e);
  (* malformed values are errors naming the variable *)
  let expect_error var pairs =
    with_env pairs (fun () ->
        match Run_opts.of_env () with
        | Ok _ -> Alcotest.failf "malformed %s accepted" var
        | Error e ->
          Alcotest.(check bool) (var ^ " named in error") true
            (Tutil.contains e var))
  in
  expect_error "LF_ENGINE" [ ("LF_ENGINE", "warp-speed") ];
  expect_error "LF_TIMEOUT_S" [ ("LF_TIMEOUT_S", "-3") ];
  expect_error "LF_TIMEOUT_S" [ ("LF_TIMEOUT_S", "soon") ];
  expect_error "LF_STORE" [ ("LF_STORE", "maybe") ];
  expect_error "LF_COLD" [ ("LF_COLD", "2") ]

let suite =
  [
    Alcotest.test_case "defaults, combinators, pp" `Quick
      test_defaults_and_combinators;
    Alcotest.test_case "Exec.run_opts equals run_request" `Quick
      test_exec_opts_equal_run_request;
    Alcotest.test_case "Batch.run_with equals Batch.run" `Quick
      test_run_with_equals_run;
    Alcotest.test_case "Batch.run_one_with equals run_one" `Quick
      test_run_one_with_equals_run_one;
    Alcotest.test_case "store_of_opts memoises per root" `Quick
      test_store_of_opts_memoised;
    Alcotest.test_case "of_env parsing and errors" `Quick test_of_env;
  ]
