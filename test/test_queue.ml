(* The multi-process work queue (lf_queue).

   Contracts under test:
   - enqueue_misses is a set difference: store hits are skipped,
     duplicates collapse, repeats land in e_queued_before, terminal
     failures are never retried;
   - draining N workers — in-process domains or forked processes —
     leaves the store bit-identical to a serial Batch.run of the same
     mix (the queue moves work, never changes it);
   - a worker that dies mid-task loses its lease after the ttl and the
     task is re-run by someone else; a stolen lease re-publishing an
     identical entry is harmless (content-addressed idempotence);
   - a task whose computation raises is terminal: recorded under
     failed/, reported by failures, refused by later enqueues;
   - the shared fingerprint file round-trips the enqueuer's view. *)

module Ir = Lf_ir.Ir
module Partition = Lf_core.Partition
module Machine = Lf_machine.Machine
module Exec = Lf_machine.Exec
module Sim = Lf_machine.Sim
module Batch = Lf_batch.Batch
module Store = Lf_batch.Batch.Store
module Queue = Lf_queue.Queue
module Sweep = Lf_queue.Sweep

open QCheck

let scratch_dir tag =
  let d = Filename.temp_file ("lf_queue_test_" ^ tag) "" in
  Sys.remove d;
  Unix.mkdir d 0o700;
  d

let scratch_store () = Store.open_ ~dir:(scratch_dir "store") ()
let scratch_queue () = Queue.open_ ~dir:(scratch_dir "q")

(* A small, fast, all-legal request mix (Run_compressed + Miss_only,
   both cacheable). *)
let mini_mix ?(n = 24) () =
  Sweep.mix ~kernels:[ "ll18"; "jacobi" ] ~machines:[ Machine.convex ]
    ~nprocs:2 ~n ()

let results_identical (a : Exec.result) (b : Exec.result) =
  a.Exec.cycles = b.Exec.cycles
  && a.Exec.phase_cycles = b.Exec.phase_cycles
  && a.Exec.barrier_cycles = b.Exec.barrier_cycles
  && a.Exec.total_refs = b.Exec.total_refs
  && a.Exec.total_misses = b.Exec.total_misses
  && a.Exec.cold_misses = b.Exec.cold_misses
  && a.Exec.tlb_misses = b.Exec.tlb_misses
  && a.Exec.proc_misses = b.Exec.proc_misses

(* Serial reference: compute [reqs] inline (jobs=1) into a fresh store
   and return it. *)
let serial_store reqs =
  let store = scratch_store () in
  let _, summary = Batch.run ~store ~jobs:1 reqs in
  Alcotest.(check int) "serial reference all computed" 0 summary.Batch.failed;
  store

let store_matches ~reference store reqs =
  List.for_all
    (fun r ->
      match (Store.lookup reference r, Store.lookup store r) with
      | Some a, Some b -> results_identical a b
      | _ -> false)
    reqs

(* ------------------------------------------------------------------ *)
(* Enqueue semantics                                                   *)

let test_enqueue_misses () =
  let store = scratch_store () in
  let q = scratch_queue () in
  let reqs = mini_mix () in
  let warm = List.hd reqs in
  (* pre-warm one entry: it must be skipped as a hit *)
  ignore (Store.add store warm (Exec.run_request warm));
  let st = Queue.enqueue_misses q ~store (reqs @ [ warm ]) in
  let unique =
    List.length
      (List.sort_uniq compare (List.map Sim.digest (reqs @ [ warm ])))
  in
  Alcotest.(check int) "unique digests" unique st.Queue.e_unique;
  Alcotest.(check int) "warm entry skipped" 1 st.Queue.e_hits;
  Alcotest.(check int) "everything else enqueued" (unique - 1)
    st.Queue.e_enqueued;
  Alcotest.(check int) "pending matches" (unique - 1)
    (Queue.status q).Queue.pending;
  (* a second enqueue of the same mix is all repeats *)
  let st2 = Queue.enqueue_misses q ~store reqs in
  Alcotest.(check int) "nothing re-enqueued" 0 st2.Queue.e_enqueued;
  Alcotest.(check int) "repeats counted" (unique - 1)
    st2.Queue.e_queued_before;
  (* Full mode can never be answered by the store *)
  let full =
    let p = Lf_kernels.Ll18.program ~n:24 () in
    Sim.fused ~strip:6
      ~layout:(Partition.contiguous p.Ir.decls)
      ~mode:Sim.Full ~machine:Machine.convex ~nprocs:2 p
  in
  (match Queue.enqueue q full with
  | `Not_cacheable -> ()
  | _ -> Alcotest.fail "Full-mode request accepted by the queue");
  ignore (Store.clear store)

(* QCheck: over random sub-mixes, the enqueue outcome counts always
   partition e_unique, and a single drain makes the store answer every
   request bit-identically to the serial reference. *)
let prop_enqueue_drain =
  Test.make ~count:8 ~name:"enqueue partitions unique; drain answers all"
    (make
       ~print:(fun (a, b) -> Printf.sprintf "take=%d n=%d" a b)
       Gen.(pair (int_range 1 8) (int_range 24 28)))
    (fun (take, n) ->
      let all = mini_mix ~n () in
      let reqs = List.filteri (fun i _ -> i < take) all in
      let store = scratch_store () in
      let q = scratch_queue () in
      let st = Queue.enqueue_misses q ~store reqs in
      if
        st.Queue.e_hits + st.Queue.e_enqueued + st.Queue.e_queued_before
        + st.Queue.e_failed_before + st.Queue.e_uncacheable
        <> st.Queue.e_unique
      then Test.fail_report "outcome counts do not partition e_unique";
      let ws = Queue.worker ~wid:"prop" ~jobs:1 ~store q in
      if ws.Queue.w_failed > 0 then Test.fail_report "drain failed";
      let reference = serial_store reqs in
      if not (store_matches ~reference store reqs) then
        Test.fail_report "drained store differs from serial reference";
      true)

(* ------------------------------------------------------------------ *)
(* Parallel drains: domains and forked processes                       *)

let test_domain_workers_identical () =
  let reqs = mini_mix () in
  let reference = serial_store reqs in
  let store = scratch_store () in
  let q = scratch_queue () in
  ignore (Queue.enqueue_misses q ~store reqs);
  let workers =
    Array.init 3 (fun i ->
        Domain.spawn (fun () ->
            Queue.worker ~wid:(Printf.sprintf "d%d" i) ~jobs:1 ~store q))
  in
  let stats = Array.map Domain.join workers in
  Alcotest.(check int) "no worker failures" 0
    (Array.fold_left (fun a s -> a + s.Queue.w_failed) 0 stats);
  let st = Queue.status q in
  Alcotest.(check int) "drained: no pending" 0 st.Queue.pending;
  Alcotest.(check int) "drained: no leases" 0 st.Queue.leased;
  Alcotest.(check bool) "domain drain bit-identical to serial" true
    (store_matches ~reference store reqs);
  (* every task was claimed by exactly one worker *)
  let claimed =
    Array.fold_left (fun a s -> a + s.Queue.w_claimed) 0 stats
  in
  let unique = List.length (List.sort_uniq compare (List.map Sim.digest reqs)) in
  Alcotest.(check int) "claims cover the mix exactly once" unique claimed

(* Separate worker *processes*, via the real CLI binary.  (Raw
   Unix.fork is off the table inside this test binary: OCaml 5 forbids
   it once any domain has ever been spawned, and earlier tests spawn
   plenty.  create_process is spawn-based and exempt — and launching
   [lfc worker] also covers the CLI wiring.) *)
let test_worker_processes_identical () =
  (* cwd is _build/default/test under `dune runtest`, the project root
     under `dune exec test/test_main.exe` *)
  match
    List.find_opt Sys.file_exists
      [ "../bin/lfc.exe"; "_build/default/bin/lfc.exe" ]
  with
  | None -> Alcotest.skip ()
  | Some lfc ->
    begin
    let reqs = mini_mix () in
    let reference = serial_store reqs in
    let store_dir = scratch_dir "fstore" in
    let store = Store.open_ ~dir:store_dir () in
    let queue_dir = scratch_dir "fq" in
    let q = Queue.open_ ~dir:queue_dir in
    ignore (Queue.enqueue_misses q ~store reqs);
    let devnull = Unix.openfile "/dev/null" [ Unix.O_WRONLY ] 0 in
    let pids =
      List.init 2 (fun i ->
          Unix.create_process lfc
            [|
              "lfc"; "worker"; "--queue"; queue_dir; "--store-dir"; store_dir;
              "--wid"; Printf.sprintf "p%d" i; "--jobs"; "1";
            |]
            Unix.stdin devnull Unix.stderr)
    in
    Unix.close devnull;
    List.iter
      (fun pid ->
        match Unix.waitpid [] pid with
        | _, Unix.WEXITED 0 -> ()
        | _ -> Alcotest.fail "worker process exited nonzero")
      pids;
    let st = Queue.status q in
    Alcotest.(check int) "drained: no pending" 0 st.Queue.pending;
    Alcotest.(check int) "drained: no leases" 0 st.Queue.leased;
    Alcotest.(check int) "no failures" 0 st.Queue.failed;
    Alcotest.(check bool) "worker-process drain bit-identical to serial" true
      (store_matches ~reference store reqs)
  end

(* ------------------------------------------------------------------ *)
(* Lease lifecycle                                                     *)

let expire lease_path =
  let past = Unix.gettimeofday () -. 3600.0 in
  Unix.utimes lease_path past past

let test_dead_worker_reclaim () =
  let store = scratch_store () in
  let q = scratch_queue () in
  let reqs = [ List.hd (mini_mix ()) ] in
  ignore (Queue.enqueue_misses q ~store reqs);
  (* a worker claims, then dies: the lease stops heartbeating *)
  (match Queue.claim ~wid:"dead" q with
  | None -> Alcotest.fail "claim found nothing"
  | Some (_, _, lease) ->
    Alcotest.(check int) "claimed: one lease" 1 (Queue.status q).Queue.leased;
    (* a live lease is never stolen *)
    Alcotest.(check int) "fresh lease not reclaimed" 0
      (Queue.reclaim_expired ~ttl:60.0 q);
    expire lease);
  Alcotest.(check int) "expired lease reclaimed" 1
    (Queue.reclaim_expired ~ttl:60.0 q);
  Alcotest.(check int) "task pending again" 1 (Queue.status q).Queue.pending;
  (* a draining worker now completes the stolen task *)
  let ws = Queue.worker ~wid:"rescuer" ~jobs:1 ~store q in
  Alcotest.(check int) "rescuer computed it" 1 ws.Queue.w_computed;
  Alcotest.(check bool) "store answers" true
    (Store.lookup store (List.hd reqs) <> None);
  ignore (Store.clear store)

(* Double compute after a steal: both the thief and the original owner
   publish; content addressing makes the second publish a byte-
   identical overwrite, and completing a vanished lease is tolerated. *)
let test_steal_idempotent () =
  let store = scratch_store () in
  let q = scratch_queue () in
  let req = List.hd (mini_mix ()) in
  ignore (Queue.enqueue_misses q ~store [ req ]);
  let _, _, lease_a =
    match Queue.claim ~wid:"a" q with
    | Some c -> c
    | None -> Alcotest.fail "claim a found nothing"
  in
  expire lease_a;
  Alcotest.(check int) "stolen" 1 (Queue.reclaim_expired ~ttl:60.0 q);
  (* thief b claims and completes *)
  let ws = Queue.worker ~wid:"b" ~jobs:1 ~store q in
  Alcotest.(check int) "b computed" 1 ws.Queue.w_computed;
  let first =
    match Store.lookup store req with
    | Some r -> r
    | None -> Alcotest.fail "b did not publish"
  in
  (* the original owner finishes late: recomputes, republishes, tries
     to complete its long-gone lease *)
  ignore (Batch.run_one ~store ~cold:true req);
  (match try Sys.remove lease_a; `Removed with Sys_error _ -> `Gone with
  | `Removed -> Alcotest.fail "stolen lease still existed"
  | `Gone -> ());
  (match Store.lookup store req with
  | Some r ->
    Alcotest.(check bool) "republish is bit-identical" true
      (results_identical first r)
  | None -> Alcotest.fail "entry vanished after republish");
  Alcotest.(check int) "exactly one entry" 1 (Store.stats store).Store.entries;
  let st = Queue.status q in
  Alcotest.(check int) "queue drained" 0 (st.Queue.pending + st.Queue.leased);
  (* warm now: nothing to enqueue *)
  let es = Queue.enqueue_misses q ~store [ req ] in
  Alcotest.(check int) "warm: store hit" 1 es.Queue.e_hits;
  Alcotest.(check int) "warm: nothing enqueued" 0 es.Queue.e_enqueued;
  ignore (Store.clear store)

(* ------------------------------------------------------------------ *)
(* Terminal failures                                                   *)

let test_failed_task_terminal () =
  let store = scratch_store () in
  let q = scratch_queue () in
  (* 9 processors on an 8-iteration space: Schedule.unfused raises at
     compute time, after the digest admitted the task *)
  let p = Tutil.chain_program ~lo:1 ~hi:8 [ [ 0 ]; [ 0 ] ] in
  let bad =
    Sim.unfused
      ~layout:(Partition.contiguous p.Ir.decls)
      ~mode:Sim.Run_compressed ~machine:Machine.convex ~nprocs:9 p
  in
  let st = Queue.enqueue_misses q ~store [ bad ] in
  Alcotest.(check int) "enqueued" 1 st.Queue.e_enqueued;
  let ws = Queue.worker ~wid:"w" ~jobs:1 ~store q in
  Alcotest.(check int) "failed" 1 ws.Queue.w_failed;
  Alcotest.(check int) "computed none" 0 ws.Queue.w_computed;
  let qs = Queue.status q in
  Alcotest.(check int) "terminal, not pending" 0 qs.Queue.pending;
  Alcotest.(check int) "recorded under failed/" 1 qs.Queue.failed;
  (match Queue.failures q with
  | [ (digest, reason) ] ->
    Alcotest.(check string) "failure filed under the digest"
      (Sim.digest bad) digest;
    Alcotest.(check bool) "failure carries a reason" true
      (String.length reason > 0)
  | l -> Alcotest.failf "expected one failure, got %d" (List.length l));
  (* never retried *)
  (match Queue.enqueue q bad with
  | `Already_failed -> ()
  | _ -> Alcotest.fail "terminal failure was re-enqueued");
  let st2 = Queue.enqueue_misses q ~store [ bad ] in
  Alcotest.(check int) "enqueue_misses skips it" 1 st2.Queue.e_failed_before

(* ------------------------------------------------------------------ *)
(* Shared fingerprint view                                             *)

let test_fingerprint_file_roundtrip () =
  Sim.Fingerprint.clear_overrides ();
  (match Sim.Fingerprint.set_override "derive" "queue-test-2" with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  let view = Sim.Fingerprint.all () in
  let path = Filename.temp_file "lf_fp_test" "" in
  Sim.Fingerprint.save_file path;
  Sim.Fingerprint.clear_overrides ();
  Alcotest.(check bool) "overrides cleared" true
    (Sim.Fingerprint.value "derive" <> "queue-test-2");
  (match Sim.Fingerprint.load_file path with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  Alcotest.(check bool) "load restores the saved view" true
    (Sim.Fingerprint.all () = view);
  Alcotest.(check string) "override survives the round trip" "queue-test-2"
    (Sim.Fingerprint.value "derive");
  Sim.Fingerprint.clear_overrides ();
  Sys.remove path;
  (* a corrupt file is an error, not a partial install *)
  let oc = open_out path in
  output_string oc "not a fingerprint file\n";
  close_out oc;
  (match Sim.Fingerprint.load_file path with
  | Error _ -> ()
  | Ok () ->
    Sim.Fingerprint.clear_overrides ();
    Alcotest.fail "garbage fingerprint file accepted");
  Sys.remove path;
  (* enqueue_misses publishes the enqueuer's view into the queue dir *)
  let store = scratch_store () in
  let q = scratch_queue () in
  ignore (Queue.enqueue_misses q ~store [ List.hd (mini_mix ()) ]);
  Alcotest.(check bool) "queue carries a fingerprint file" true
    (Sys.file_exists (Queue.fingerprint_file q));
  match Sim.Fingerprint.load_file (Queue.fingerprint_file q) with
  | Ok () -> Sim.Fingerprint.clear_overrides ()
  | Error e -> Alcotest.fail e

let suite =
  [
    Alcotest.test_case "enqueue_misses set semantics" `Quick
      test_enqueue_misses;
    Tutil.to_alcotest prop_enqueue_drain;
    Alcotest.test_case "3 domain workers bit-identical to serial" `Quick
      test_domain_workers_identical;
    Alcotest.test_case "2 worker processes bit-identical to serial" `Quick
      test_worker_processes_identical;
    Alcotest.test_case "dead worker lease reclaim" `Quick
      test_dead_worker_reclaim;
    Alcotest.test_case "lease steal is idempotent" `Quick
      test_steal_idempotent;
    Alcotest.test_case "failed task is terminal" `Quick
      test_failed_task_terminal;
    Alcotest.test_case "fingerprint file round trip" `Quick
      test_fingerprint_file_roundtrip;
  ]
