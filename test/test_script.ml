(* The transformation-script engine (lib/script + the .lft language).

   Four pillars:

   1. Golden checkpoints: the shipped fig9/heat2d scripts replay the
      paper's fused shift-and-peel schedules; the pretty-printed state
      after every step is pinned to test/golden/<prog>_NN_<step>_exp.loop.
      Regenerate intentionally changed goldens with
      LF_PROMOTE=1 dune runtest (the CLI-driven copies in test/dune are
      refreshed with dune promote).

   2. Semantic equivalence (qcheck): any random script whose steps all
      pass the legality checks yields a program whose Interp results
      are bit-identical to the untransformed program on random inputs —
      over the six paper kernels plus the two shipped .loop examples.
      A second property checks the realized schedule executes
      bit-identically under all processor interleavings.

   3. The .lft language: print -> parse -> print is a fixpoint, and
      parse errors carry exact 1-based line/column positions.

   4. Negative-legality matrix: for every step kind at least one
      illegal application is rejected with the offending dependence
      named in the message (and carried as a typed witness edge). *)

module Ir = Lf_ir.Ir
module Interp = Lf_ir.Interp
module Dep = Lf_dep.Dep
module Derive = Lf_core.Derive
module Schedule = Lf_core.Schedule
module Script = Lf_script.Script
module Realize = Lf_script.Realize
module Lft = Lf_front.Lft
module Sim = Lf_machine.Sim
module Machine = Lf_machine.Machine

open QCheck

let contains = Tutil.contains

(* ------------------------------------------------------------------ *)
(* Paths: tests run from _build/default/test; fall back to the repo
   root so the suite also works under `dune exec test/test_main.exe`
   from the top. *)

let first_existing what candidates =
  match List.find_opt Sys.file_exists candidates with
  | Some p -> p
  | None ->
    Alcotest.failf "cannot locate %s (tried %s)" what
      (String.concat ", " candidates)

let example path =
  first_existing path [ "../examples/" ^ path; "examples/" ^ path ]

let golden_path name =
  first_existing name [ "golden/" ^ name; "test/golden/" ^ name ]

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let promote = Sys.getenv_opt "LF_PROMOTE" = Some "1"

(* LF_PROMOTE must rewrite the goldens in the SOURCE tree, not the
   build mirror. *)
let promote_path name =
  let dir =
    first_existing "source test/golden directory"
      [ "../../../test/golden"; "test/golden"; "golden" ]
  in
  Filename.concat dir name

let check_golden name actual =
  if promote then begin
    let oc = open_out_bin (promote_path name) in
    output_string oc actual;
    close_out oc
  end
  else
    match read_file (golden_path name) with
    | expected -> Alcotest.(check string) name expected actual
    | exception _ ->
      Alcotest.failf "missing golden %s (regenerate with LF_PROMOTE=1 dune \
                      runtest)" name

(* ------------------------------------------------------------------ *)
(* Golden checkpoint corpus: the paper's schedules for the two shipped
   .loop examples. *)

let run_with_checkpoints p steps =
  let cks = ref [ (0, "input", Script.checkpoint_to_string (Script.init p)) ] in
  match
    Script.run
      ~checkpoint:(fun i s st ->
        cks := (i + 1, Script.step_name s, Script.checkpoint_to_string st)
               :: !cks)
      p steps
  with
  | Error e -> Alcotest.failf "script failed: %s" (Script.error_to_string e)
  | Ok st -> (st, List.rev !cks)

let int_matrix = Alcotest.(array (array int))

let golden_case ~prog ~script ~shift ~peel () =
  let p = Lf_front.Parse.program_of_file (example ("programs/" ^ prog)) in
  let steps = Lft.parse_file (example ("scripts/" ^ script)) in
  let st, cks = run_with_checkpoints p steps in
  List.iter
    (fun (i, name, text) ->
      check_golden (Printf.sprintf "%s_%02d_%s_exp.loop" p.Ir.pname i name) text)
    cks;
  (* the recorded group must reproduce the paper's shift/peel vectors *)
  (match Realize.whole_program_derive st with
  | None -> Alcotest.fail "expected a whole-program shift-and-peel group"
  | Some (_depth, d) ->
    Alcotest.check int_matrix (prog ^ ": shifts") shift d.Derive.shift;
    Alcotest.check int_matrix (prog ^ ": peels") peel d.Derive.peel);
  (* the realized schedule executes bit-identically to the reference *)
  let sched = Realize.schedule ~nprocs:4 st in
  let reference = Interp.run p in
  List.iter
    (fun order ->
      Alcotest.(check bool)
        (prog ^ ": schedule bit-identical") true
        (Interp.equal reference (Schedule.execute ~order sched)))
    [ Schedule.Natural; Schedule.Reversed; Schedule.Interleaved ];
  (* the realized request is the canonical Fused variant and is legal *)
  let req = Realize.request ~machine:Machine.convex ~nprocs:4 st in
  Alcotest.(check bool) (prog ^ ": Sim.legal") true (Sim.legal req);
  (match req.Sim.variant with
  | Sim.Fused { strip = Some _; derive = Some _; _ } -> ()
  | _ -> Alcotest.fail (prog ^ ": expected the canonical Fused variant"));
  Alcotest.(check bool)
    (prog ^ ": partitioned layout requested") true
    (req.Sim.layout <> None)

let test_fig9_goldens () =
  golden_case ~prog:"fig9.loop" ~script:"fig9_shift_peel.lft"
    ~shift:[| [| 0 |]; [| 1 |]; [| 2 |] |]
    ~peel:[| [| 0 |]; [| 1 |]; [| 2 |] |]
    ()

let test_heat2d_goldens () =
  golden_case ~prog:"heat2d.loop" ~script:"heat2d_shift_peel.lft"
    ~shift:[| [| 0; 0 |]; [| 1; 1 |] |]
    ~peel:[| [| 0; 0 |]; [| 1; 1 |] |]
    ()

(* ------------------------------------------------------------------ *)
(* Random-script semantic equivalence. *)

(* Deterministic random init, respecting the double-underscore alias
   convention (Interp.default_init): arrays introduced by a
   transformation ("za__copy") must start from the base array's
   values. *)
let base_name name =
  let n = String.length name in
  let rec go i =
    if i + 1 >= n then name
    else if name.[i] = '_' && name.[i + 1] = '_' then String.sub name 0 i
    else go (i + 1)
  in
  go 0

let seeded_init seed name k =
  let h = Hashtbl.hash (seed, base_name name, k) land 0xFFFFF in
  1.0 +. (float_of_int h /. 1048576.0)

(* The six paper kernels (test_roundtrip sizes) plus the two shipped
   .loop examples. *)
let pool =
  lazy
    [
      ("ll18", Lf_kernels.Ll18.program ~n:32 ());
      ("calc", Lf_kernels.Calc.program ~n:32 ());
      ("filter", Lf_kernels.Filter.program ~rows:24 ~cols:20 ());
      ("jacobi", Lf_kernels.Jacobi.program ~n:24 ());
      ( "fig9",
        Tutil.chain_program ~name:"fig9" ~lo:2 ~hi:30
          [ [ 0 ]; [ 1; -1 ]; [ 1; -1 ] ] );
      ( "tomcatv-seq1",
        List.hd (Lf_kernels.Apps.tomcatv ~n:33 ()).Lf_kernels.Apps.sequences );
      ( "fig9.loop",
        Lf_front.Parse.program_of_file (example "programs/fig9.loop") );
      ( "heat2d.loop",
        Lf_front.Parse.program_of_file (example "programs/heat2d.loop") );
    ]

(* Random steps drawing targets from the program's actual nest ids
   (consecutive slices for fuse/shift_peel, so a decent fraction of
   scripts is legal; steps whose targets vanished after a rewrite are
   rejected by the legality layer, which is exactly the contract). *)
let gen_step ids =
  let open Gen in
  let nids = Array.of_list ids in
  let n = Array.length nids in
  let id = oneofl ids in
  let slice =
    if n < 2 then return ids
    else
      let* start = int_range 0 (n - 2) in
      let* len = int_range 2 (n - start) in
      return (Array.to_list (Array.sub nids start len))
  in
  frequency
    [
      (3, slice >|= fun ts -> Script.shift_peel ts);
      (2, slice >|= fun ts -> Script.fuse ts);
      (2, id >|= Script.fission);
      (1, int_range (-2) 24 >|= Script.strip_mine);
      (1, id >|= Script.interchange);
      (1, return Script.partition);
      ((1, opt (int_range 1 9) >|= fun tile -> Script.Wavefront { tile }));
      (1, return Script.align);
    ]

let arb_script_case =
  let progs = Array.of_list (Lazy.force pool) in
  let gen =
    let open Gen in
    let* k = int_range 0 (Array.length progs - 1) in
    let _, p = progs.(k) in
    let ids = List.map (fun (n : Ir.nest) -> n.Ir.nid) p.Ir.nests in
    let* steps = list_size (int_range 1 5) (gen_step ids) in
    let* seed = int_range 0 1_000_000 in
    return (k, steps, seed)
  in
  make
    ~print:(fun (k, steps, seed) ->
      let name, _ = progs.(k) in
      Printf.sprintf "%s seed=%d\n%s" name seed (Script.script_to_string steps))
    gen

(* Any script that passes every per-step legality check preserves
   Interp semantics bit-exactly on random inputs (original arrays). *)
let prop_legal_script_bit_identical =
  let progs = Array.of_list (Lazy.force pool) in
  Test.make ~count:400 ~name:"legal script => bit-identical semantics"
    arb_script_case
    (fun (k, steps, seed) ->
      let _, p = progs.(k) in
      match Script.run p steps with
      | Error _ -> true (* rejected scripts are vacuously fine *)
      | Ok st ->
        let init = seeded_init seed in
        let reference = Interp.run ~init p in
        let got = Interp.run ~init st.Script.prog in
        List.for_all
          (fun (d : Ir.decl) ->
            Interp.find_array reference d.Ir.aname
            = Interp.find_array got d.Ir.aname)
          p.Ir.decls)

(* ... and the REALIZED schedule of a legal script executes
   bit-identically to the serial reference under every interleaving
   (whenever the Theorem 1 threshold admits the configuration). *)
let prop_legal_script_schedule =
  let progs = Array.of_list (Lazy.force pool) in
  Test.make ~count:150 ~name:"legal script => realized schedule bit-identical"
    (pair arb_script_case (int_range 1 4))
    (fun ((k, steps, seed), nprocs) ->
      let _, p = progs.(k) in
      match Script.run p steps with
      | Error _ -> true
      | Ok st -> (
        match Realize.schedule ~nprocs st with
        | exception Schedule.Illegal _ -> true (* threshold rejects *)
        | exception Invalid_argument _ -> true (* more procs than iters *)
        | sched ->
          let init = seeded_init seed in
          let reference = Interp.run ~init st.Script.prog in
          List.for_all
            (fun order ->
              Interp.equal reference (Schedule.execute ~order ~init sched))
            [ Schedule.Natural; Schedule.Reversed; Schedule.Interleaved ]))

(* ------------------------------------------------------------------ *)
(* The .lft language. *)

let gen_ident =
  Gen.oneofl [ "L1"; "L2"; "L3"; "step"; "copyback"; "F"; "a_1"; "x9" ]

(* Arbitrary printable steps (targets need not name real nests: the
   fixpoint is a parser property, not a legality property). *)
let gen_print_step =
  let open Gen in
  let targets = list_size (int_range 1 3) gen_ident in
  let into = opt gen_ident in
  frequency
    [
      ( 2,
        let* ts = targets and* into = into in
        return (Script.Fuse { targets = ts; into }) );
      ( 2,
        let* ts = targets and* into = into in
        return (Script.Shift_peel { targets = ts; into }) );
      (2, gen_ident >|= Script.fission);
      (1, int_range (-5) 99 >|= Script.strip_mine);
      (2, gen_ident >|= Script.interchange);
      (1, return Script.partition);
      ((1, opt (int_range 0 99) >|= fun tile -> Script.Wavefront { tile }));
      (1, return Script.align);
    ]

let arb_print_script =
  make
    ~print:(fun steps -> Script.script_to_string steps)
    Gen.(list_size (int_range 0 8) gen_print_step)

let prop_lft_fixpoint =
  Test.make ~count:250 ~name:".lft print -> parse -> print is a fixpoint"
    arb_print_script
    (fun steps ->
      let s = Script.script_to_string steps in
      let steps' = Lft.parse s in
      steps' = steps && String.equal (Script.script_to_string steps') s)

(* An unparseable line inserted anywhere is reported at exactly that
   1-based line (and column 1 for an unknown step word). *)
let prop_lft_error_position =
  Test.make ~count:120 ~name:".lft parse errors carry line/column"
    (pair arb_print_script small_nat)
    (fun (steps, idx) ->
      let lines = List.map Script.step_to_string steps in
      let k = idx mod (List.length lines + 1) in
      let before = List.filteri (fun i _ -> i < k) lines in
      let after = List.filteri (fun i _ -> i >= k) lines in
      let src = String.concat "\n" (before @ ("@@@ bogus" :: after)) ^ "\n" in
      match Lft.parse src with
      | _ -> false
      | exception Lft.Error { line; col; _ } -> line = k + 1 && col = 1)

let test_lft_error_columns () =
  let check_err src eline ecol =
    match Lft.parse src with
    | _ -> Alcotest.failf "expected a parse error for %S" src
    | exception Lft.Error { line; col; msg } ->
      Alcotest.(check (pair int int))
        (Printf.sprintf "%S -> %s" src msg)
        (eline, ecol) (line, col)
  in
  check_err "strip_mine xyz\n" 1 12;
  check_err "fuse L1 L2\nbogus L1\n" 2 1;
  check_err "partition extra\n" 1 11;
  check_err "fuse L1 into\n" 1 13;
  check_err "wavefront 3 4\n" 1 13;
  check_err "shift_peel L1 9x\n" 1 15;
  check_err "fission\n" 1 8;
  (* comments and blank lines do not shift positions *)
  check_err "# header\n\nshift_peel L1 L2 # ok\nstrip_mine many\n" 4 12;
  (* error rendering *)
  (match Lft.parse "strip_mine xyz" with
  | _ -> Alcotest.fail "expected a parse error"
  | exception e ->
    (match Lft.error_to_string ~file:"s.lft" e with
    | Some s ->
      Alcotest.(check bool) "rendered position" true (contains s "s.lft:1:12")
    | None -> Alcotest.fail "error_to_string returned None"))

(* ------------------------------------------------------------------ *)
(* Negative-legality matrix: one rejected application per step kind,
   with the offending dependence named. *)

let expect_illegal ?(witness = false) p steps fragments =
  match Script.run p steps with
  | Ok _ ->
    Alcotest.failf "expected an illegal step in:\n%s"
      (Script.script_to_string steps)
  | Error e ->
    let msg = Script.error_to_string e in
    List.iter
      (fun frag ->
        Alcotest.(check bool)
          (Printf.sprintf "%S mentions %S" msg frag)
          true (contains msg frag))
      fragments;
    if witness then
      Alcotest.(check bool) "carries a witness dependence" true
        (e.Script.witness_dep <> None);
    e

(* A 1-D two-nest program with a non-uniform (2*i) cross-nest read. *)
let nonuniform_program () =
  let i o = Ir.av ~c:o "i" in
  let p =
    {
      Ir.pname = "nonuni";
      decls =
        List.map
          (fun a -> { Ir.aname = a; extents = [ 64 ] })
          [ "a0"; "a1"; "a2" ];
      nests =
        [
          {
            Ir.nid = "L1";
            levels = [ { Ir.lvar = "i"; lo = 1; hi = 10; parallel = true } ];
            body = [ Ir.stmt (Ir.aref "a1" [ i 0 ]) (Ir.Read (Ir.aref "a0" [ i 0 ])) ];
          };
          {
            Ir.nid = "L2";
            levels = [ { Ir.lvar = "i"; lo = 1; hi = 10; parallel = true } ];
            body =
              [
                Ir.stmt
                  (Ir.aref "a2" [ i 0 ])
                  (Ir.Read (Ir.aref "a1" [ Ir.affine [ (2, "i") ] ]));
              ];
          };
        ];
    }
  in
  Ir.validate p;
  p

let test_illegal_fuse () =
  (* a2[i] = a1[i+1]: backward (distance -1) flow dependence, the
     Figure 3 case plain fusion must reject *)
  let p = Tutil.chain_program ~lo:2 ~hi:30 [ [ 0 ]; [ 1 ] ] in
  let e =
    expect_illegal ~witness:true p
      [ Script.fuse [ "L1"; "L2" ] ]
      [ "fuse"; "backward"; "a1"; "L1 -> L2"; "(-1)" ]
  in
  (match e.Script.witness_dep with
  | Some edge ->
    Alcotest.(check string) "witness array" "a1" edge.Dep.array;
    Alcotest.(check bool) "witness kind" true (edge.Dep.dkind = Dep.Flow)
  | None -> Alcotest.fail "no witness");
  (* unknown target *)
  ignore
    (expect_illegal p
       [ Script.fuse [ "L1"; "Lx" ] ]
       [ "no nest named Lx" ]);
  (* non-consecutive targets *)
  let p3 = Tutil.chain_program ~lo:2 ~hi:30 [ [ 0 ]; [ 0 ]; [ 0 ] ] in
  ignore
    (expect_illegal p3
       [ Script.fuse [ "L1"; "L3" ] ]
       [ "consecutive" ])

let test_illegal_fission () =
  (* mutually dependent statements: a[i] = b[i-1]; b[i] = a[i-1] form
     one pi-block *)
  let i o = Ir.av ~c:o "i" in
  let p =
    {
      Ir.pname = "cyc";
      decls =
        List.map (fun a -> { Ir.aname = a; extents = [ 32 ] }) [ "a"; "b" ];
      nests =
        [
          {
            Ir.nid = "L";
            levels = [ { Ir.lvar = "i"; lo = 1; hi = 20; parallel = false } ];
            body =
              [
                Ir.stmt (Ir.aref "a" [ i 0 ]) (Ir.Read (Ir.aref "b" [ i (-1) ]));
                Ir.stmt (Ir.aref "b" [ i 0 ]) (Ir.Read (Ir.aref "a" [ i (-1) ]));
              ];
          };
        ];
    }
  in
  Ir.validate p;
  ignore (expect_illegal p [ Script.fission "L" ] [ "fission"; "pi-block" ]);
  (* single-statement nest: nothing to distribute *)
  let p1 = Tutil.chain_program ~lo:2 ~hi:20 [ [ 0 ] ] in
  ignore
    (expect_illegal p1 [ Script.fission "L1" ] [ "single statement" ])

let test_illegal_shift_peel () =
  let e =
    expect_illegal ~witness:true (nonuniform_program ())
      [ Script.shift_peel [ "L1"; "L2" ] ]
      [ "shift_peel"; "uniform"; "a1" ]
  in
  (match e.Script.witness_dep with
  | Some edge -> (
    Alcotest.(check string) "witness array" "a1" edge.Dep.array;
    match edge.Dep.dist with
    | Dep.Not_uniform _ -> ()
    | Dep.Dist _ -> Alcotest.fail "expected a non-uniform witness")
  | None -> Alcotest.fail "no witness");
  (* a serial nest cannot join a shift-and-peel group *)
  let p = Tutil.chain_program ~lo:2 ~hi:30 [ [ 0 ]; [ 0 ] ] in
  let serial =
    {
      p with
      Ir.nests =
        List.map
          (fun (n : Ir.nest) ->
            if n.Ir.nid = "L2" then
              {
                n with
                Ir.levels =
                  List.map
                    (fun (l : Ir.level) -> { l with Ir.parallel = false })
                    n.Ir.levels;
              }
            else n)
          p.Ir.nests;
    }
  in
  ignore
    (expect_illegal serial
       [ Script.shift_peel [ "L1"; "L2" ] ]
       [ "shift_peel"; "L2"; "doall" ])

let test_illegal_strip_mine () =
  let p = Tutil.chain_program ~lo:2 ~hi:30 [ [ 0 ]; [ 1; -1 ] ] in
  ignore
    (expect_illegal p [ Script.strip_mine 8 ] [ "no fused group" ]);
  ignore
    (expect_illegal p
       [ Script.shift_peel [ "L1"; "L2" ]; Script.strip_mine 0 ]
       [ "positive" ])

let test_illegal_interchange () =
  (* a[i][j] reads a[i-1][j]: the outer level carries a dependence *)
  let p =
    {
      Ir.pname = "carry";
      decls = [ { Ir.aname = "a"; extents = [ 16; 16 ] } ];
      nests =
        [
          {
            Ir.nid = "L";
            levels =
              [
                { Ir.lvar = "i"; lo = 1; hi = 10; parallel = false };
                { Ir.lvar = "j"; lo = 0; hi = 10; parallel = true };
              ];
            body =
              [
                Ir.stmt
                  (Ir.aref "a" [ Ir.av "i"; Ir.av "j" ])
                  (Ir.Read (Ir.aref "a" [ Ir.av ~c:(-1) "i"; Ir.av "j" ]));
              ];
          };
        ];
    }
  in
  Ir.validate p;
  ignore
    (expect_illegal p
       [ Script.interchange "L" ]
       [ "interchange"; "may carry" ]);
  (* one loop level: nothing to interchange *)
  let p1 = Tutil.chain_program ~lo:2 ~hi:20 [ [ 0 ] ] in
  ignore
    (expect_illegal p1
       [ Script.interchange "L1" ]
       [ "interchange"; "needs two" ])

let test_illegal_partition () =
  (* a[2*i] vs a[i]: different subscript mappings, incompatible (§4) *)
  ignore
    (expect_illegal (nonuniform_program ())
       [ Script.partition ]
       [ "partition"; "subscript mappings"; "a1[2*i]" ])

let test_illegal_wavefront () =
  ignore
    (expect_illegal ~witness:true (nonuniform_program ())
       [ Script.wavefront () ]
       [ "wavefront"; "uniform" ]);
  let p = Tutil.chain_program ~lo:2 ~hi:30 [ [ 0 ]; [ 1; -1 ] ] in
  ignore
    (expect_illegal p
       [ Script.shift_peel ~into:"G" [ "L1"; "L2" ]; Script.wavefront () ]
       [ "wavefront"; "cannot follow"; "G" ]);
  ignore (expect_illegal p [ Script.wavefront ~tile:0 () ] [ "positive" ]);
  (* wavefront is terminal: later program rewrites would invalidate the
     derived shifts (found by the schedule-equivalence property) *)
  let q = Tutil.chain_program ~lo:2 ~hi:30 [ [ 0 ]; [ 0 ] ] in
  ignore
    (expect_illegal q
       [ Script.wavefront (); Script.fuse [ "L1"; "L2" ] ]
       [ "fuse"; "cannot follow" ]);
  ignore
    (expect_illegal q
       [ Script.wavefront (); Script.interchange "L1" ]
       [ "interchange"; "cannot follow" ]);
  ignore
    (expect_illegal q
       [ Script.wavefront (); Script.shift_peel [ "L1"; "L2" ] ]
       [ "shift_peel"; "one style" ])

let test_illegal_align () =
  ignore
    (expect_illegal (nonuniform_program ()) [ Script.align ] [ "align" ]);
  let p = Tutil.chain_program ~lo:2 ~hi:30 [ [ 0 ]; [ 1; -1 ] ] in
  ignore
    (expect_illegal p
       [ Script.shift_peel [ "L1"; "L2" ]; Script.align ]
       [ "align"; "cannot follow" ])

(* ------------------------------------------------------------------ *)
(* Combinator rewrites: fuse/fission round trip, serialized fusion. *)

let test_fuse_fission_roundtrip () =
  (* distance-0 flow: plain fusion is legal and stays parallel *)
  let p = Tutil.chain_program ~lo:2 ~hi:20 [ [ 0 ]; [ 0 ] ] in
  let st =
    match Script.run p [ Script.fuse ~into:"F" [ "L1"; "L2" ] ] with
    | Ok st -> st
    | Error e -> Alcotest.failf "fuse failed: %s" (Script.error_to_string e)
  in
  Alcotest.(check int) "one fused nest" 1 (List.length st.Script.prog.Ir.nests);
  let f = List.hd st.Script.prog.Ir.nests in
  Alcotest.(check string) "fused nest is named" "F" f.Ir.nid;
  Alcotest.(check bool)
    "fused nest stays doall" true
    (List.for_all (fun (l : Ir.level) -> l.Ir.parallel) f.Ir.levels);
  Alcotest.(check bool)
    "fusion preserves semantics" true
    (Interp.equal (Interp.run p) (Interp.run st.Script.prog));
  (* ... and fission splits it back into two pi-block nests *)
  let st2 =
    match Script.apply st (Script.fission "F") with
    | Ok st2 -> st2
    | Error e -> Alcotest.failf "fission failed: %s" (Script.error_to_string e)
  in
  Alcotest.(check int) "fission splits the fused nest" 2
    (List.length st2.Script.prog.Ir.nests);
  Alcotest.(check bool)
    "fission preserves semantics" true
    (Interp.equal (Interp.run p) (Interp.run st2.Script.prog))

let test_fuse_serializes_forward_dep () =
  (* a2[i] = a1[i-1]: forward carried dependence — legal but the fused
     loop loses parallelism (Figure 4) *)
  let p = Tutil.chain_program ~lo:2 ~hi:20 [ [ 0 ]; [ -1 ] ] in
  match Script.run p [ Script.fuse [ "L1"; "L2" ] ] with
  | Error e -> Alcotest.failf "fuse failed: %s" (Script.error_to_string e)
  | Ok st ->
    let f = List.hd st.Script.prog.Ir.nests in
    Alcotest.(check bool)
      "fused loop is serialized" true
      (List.for_all (fun (l : Ir.level) -> not l.Ir.parallel) f.Ir.levels);
    Alcotest.(check bool)
      "serialized fusion preserves semantics" true
      (Interp.equal (Interp.run p) (Interp.run st.Script.prog))

let test_fuse_union_bounds () =
  (* members with different bounds fuse under union bounds + guards *)
  let p = Tutil.chain_program ~lo:2 ~hi:20 [ [ 0 ]; [ 0 ] ] in
  let narrowed =
    {
      p with
      Ir.nests =
        List.map
          (fun (n : Ir.nest) ->
            if n.Ir.nid = "L2" then
              {
                n with
                Ir.levels =
                  List.map
                    (fun (l : Ir.level) -> { l with Ir.lo = 5; hi = 15 })
                    n.Ir.levels;
              }
            else n)
          p.Ir.nests;
    }
  in
  match Script.run narrowed [ Script.fuse [ "L1"; "L2" ] ] with
  | Error e -> Alcotest.failf "fuse failed: %s" (Script.error_to_string e)
  | Ok st ->
    let f = List.hd st.Script.prog.Ir.nests in
    let l = List.hd f.Ir.levels in
    Alcotest.(check (pair int int)) "union bounds" (2, 20) (l.Ir.lo, l.Ir.hi);
    Alcotest.(check bool)
      "narrow member is guarded" true
      (List.exists (fun (s : Ir.stmt) -> s.Ir.guard <> []) f.Ir.body);
    Alcotest.(check bool)
      "guarded fusion preserves semantics" true
      (Interp.equal (Interp.run narrowed) (Interp.run st.Script.prog))

(* ------------------------------------------------------------------ *)
(* Sim.legal: the shared legality probe (also used by bench/exp_serve). *)

let test_sim_legal () =
  (* 6 iterations, shift 3, 4 processors: blocks fall below the
     Theorem 1 threshold *)
  let tiny = Tutil.chain_program ~lo:1 ~hi:6 [ [ 0 ]; [ 3 ] ] in
  let fused =
    Sim.fused ~machine:Machine.convex ~nprocs:4 ~strip:2 tiny
  in
  Alcotest.(check bool) "tiny fused request is illegal" false (Sim.legal fused);
  Alcotest.(check bool)
    "unfused request is legal" true
    (Sim.legal (Sim.unfused ~machine:Machine.convex ~nprocs:2 tiny));
  (* legal <=> schedule_of succeeds *)
  (match Sim.schedule_of fused with
  | _ -> Alcotest.fail "schedule_of should have raised"
  | exception _ -> ())

(* ------------------------------------------------------------------ *)

let suite =
  [
    Alcotest.test_case "fig9 golden checkpoints" `Quick test_fig9_goldens;
    Alcotest.test_case "heat2d golden checkpoints" `Quick test_heat2d_goldens;
    Alcotest.test_case "lft error columns" `Quick test_lft_error_columns;
    Alcotest.test_case "illegal fuse" `Quick test_illegal_fuse;
    Alcotest.test_case "illegal fission" `Quick test_illegal_fission;
    Alcotest.test_case "illegal shift_peel" `Quick test_illegal_shift_peel;
    Alcotest.test_case "illegal strip_mine" `Quick test_illegal_strip_mine;
    Alcotest.test_case "illegal interchange" `Quick test_illegal_interchange;
    Alcotest.test_case "illegal partition" `Quick test_illegal_partition;
    Alcotest.test_case "illegal wavefront" `Quick test_illegal_wavefront;
    Alcotest.test_case "illegal align" `Quick test_illegal_align;
    Alcotest.test_case "fuse/fission round trip" `Quick
      test_fuse_fission_roundtrip;
    Alcotest.test_case "fuse serializes forward dep" `Quick
      test_fuse_serializes_forward_dep;
    Alcotest.test_case "fuse union bounds" `Quick test_fuse_union_bounds;
    Alcotest.test_case "Sim.legal probe" `Quick test_sim_legal;
    Tutil.to_alcotest prop_legal_script_bit_identical;
    Tutil.to_alcotest prop_legal_script_schedule;
    Tutil.to_alcotest prop_lft_fixpoint;
    Tutil.to_alcotest prop_lft_error_position;
  ]
