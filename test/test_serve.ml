(* The simulation service (lf_serve): wire codecs, admission queue,
   counter scopes, and a live in-process server.

   Contracts under test:
   - the wire codecs round-trip every message bit-exactly (requests via
     the canonical text the store digests; results and progress floats
     via their IEEE-754 bit patterns) and reject truncated or mutated
     payloads without exceptions — a QCheck property over the paper's
     kernel grid including Explicit/derive variants;
   - malformed payloads and broken frames never take the server down:
     the offending connection gets a Rejected (or is dropped), and the
     next connection is served normally;
   - results served over the socket are bit-identical to a local
     Exec.run_request of the same request, for concurrent clients on
     separate domains;
   - a saturating burst is answered with Overloaded, not an unbounded
     queue, and the DRR scheduler interleaves a one-job client with a
     flooding one instead of starving it. *)

module Ir = Lf_ir.Ir
module Schedule = Lf_core.Schedule
module Derive = Lf_core.Derive
module Partition = Lf_core.Partition
module Machine = Lf_machine.Machine
module Exec = Lf_machine.Exec
module Sim = Lf_machine.Sim
module Batch = Lf_batch.Batch
module Cache = Lf_cache.Cache
module Wire = Lf_serve.Wire
module Drr = Lf_serve.Drr
module Serve = Lf_serve.Serve
module Client = Lf_serve.Client

open QCheck

(* Frame-level tests write into sockets the peer may have closed; the
   write must surface as EPIPE, not kill the test binary. *)
let () = Sys.set_signal Sys.sigpipe Sys.Signal_ignore

(* ------------------------------------------------------------------ *)
(* Request generator: the six-kernel grid of test_batch, including
   fused-with-derive and Explicit (prebuilt schedule) variants.        *)

let kernels : (string * (int -> Ir.program)) array =
  [|
    ("ll18", fun n -> Lf_kernels.Ll18.program ~n ());
    ("calc", fun n -> Lf_kernels.Calc.program ~n ());
    ("jacobi", fun n -> Lf_kernels.Jacobi.program ~n ());
    ("filter", fun n -> Lf_kernels.Filter.program ~rows:n ~cols:(n / 2 + 8) ());
    ( "tomcatv",
      fun n -> List.hd (Lf_kernels.Apps.tomcatv ~n ()).Lf_kernels.Apps.sequences
    );
    ( "hydro2d",
      fun n ->
        List.hd
          (Lf_kernels.Apps.hydro2d ~rows:n ~cols:(n / 2 + 8) ())
            .Lf_kernels.Apps.sequences );
  |]

let layout_for machine (p : Ir.program) =
  Partition.cache_partitioned
    ~cache:
      {
        Partition.capacity = machine.Machine.cache.Cache.capacity;
        line = machine.Machine.cache.Cache.line;
        assoc = machine.Machine.cache.Cache.assoc;
      }
    p.Ir.decls

(* Build a request from picked coordinates; skips illegal fusions by
   falling back to the unfused variant. *)
let request_of_pick (ki, n, mi, variant_pick, mode, steps, with_layout) =
  let _, prog = kernels.(ki mod Array.length kernels) in
  let p = prog n in
  let machine = if mi then Machine.ksr2 else Machine.convex in
  let layout = if with_layout then Some (layout_for machine p) else None in
  let mk variant = Sim.make ?layout ~steps ~mode ~machine ~nprocs:4 ~variant p in
  let fused_or_unfused f =
    match f () with
    | req when Sim.legal req -> req
    | _ -> mk (Sim.Unfused { grid = None; depth = None })
    | exception _ -> mk (Sim.Unfused { grid = None; depth = None })
  in
  match variant_pick with
  | 0 -> mk (Sim.Unfused { grid = None; depth = None })
  | 1 ->
    fused_or_unfused (fun () ->
        mk (Sim.Fused { grid = None; strip = Some 8; derive = None }))
  | 2 ->
    (* fused with an explicit derive record (shift/peel matrices on the
       wire) *)
    fused_or_unfused (fun () ->
        let d = Derive.of_program ~depth:1 p in
        mk (Sim.Fused { grid = None; strip = Some 8; derive = Some d }))
  | _ ->
    (* Explicit: serialise a prebuilt schedule box by box *)
    fused_or_unfused (fun () ->
        let sched =
          Sim.schedule_of
            (mk (Sim.Fused { grid = None; strip = Some 8; derive = None }))
        in
        Sim.of_schedule ?layout ~steps ~mode ~machine sched)

let pick_gen =
  Gen.(
    map
      (fun (ki, n, mi, v, m, steps, wl) -> (ki, n, mi, v, m, steps, wl))
      (tup7 (int_bound 10) (oneofl [ 24; 32; 40 ]) bool (int_bound 3)
         (oneofl [ Sim.Full; Sim.Miss_only; Sim.Run_compressed ])
         (oneofl [ 1; 2; 5 ])
         bool))

let request_arb =
  make ~print:(fun pick -> Sim.canonical (request_of_pick pick)) pick_gen

(* ------------------------------------------------------------------ *)
(* Wire codec properties.                                              *)

let t_request_roundtrip =
  Test.make ~count:60 ~name:"wire: request canonical round-trip" request_arb
    (fun pick ->
      let req = request_of_pick pick in
      let text = Sim.canonical req in
      match Wire.request_of_canonical text with
      | Error m -> Test.fail_reportf "decode failed: %s" m
      | Ok req' ->
        Sim.canonical req' = text && Sim.digest req' = Sim.digest req)

let t_request_frame_roundtrip =
  Test.make ~count:40 ~name:"wire: Request frame round-trip"
    (pair request_arb small_nat) (fun (pick, rid) ->
      let req = request_of_pick pick in
      let payload = Wire.client_msg_to_payload (Wire.Request { rid; req }) in
      match Wire.client_msg_of_payload payload with
      | Ok (Wire.Request { rid = rid'; req = req' }) ->
        rid' = rid && Sim.digest req' = Sim.digest req
      | Ok _ -> false
      | Error m -> Test.fail_reportf "decode failed: %s" m)

let t_request_truncation =
  Test.make ~count:30 ~name:"wire: truncated canonical text is rejected"
    (pair request_arb (make Gen.(float_bound_exclusive 1.0)))
    (fun (pick, frac) ->
      let text = Sim.canonical (request_of_pick pick) in
      let k = int_of_float (frac *. float_of_int (String.length text)) in
      let k = min k (String.length text - 1) in
      match Wire.request_of_canonical (String.sub text 0 k) with
      | Error _ -> true
      | Ok _ -> Test.fail_reportf "accepted a %d/%d-byte prefix" k
                  (String.length text))

let t_request_mutation =
  Test.make ~count:60 ~name:"wire: mutated canonical text never misparses"
    (triple request_arb small_nat char) (fun (pick, pos, c) ->
      let req = request_of_pick pick in
      let text = Sim.canonical req in
      let b = Bytes.of_string text in
      let pos = pos mod Bytes.length b in
      Bytes.set b pos c;
      let mutated = Bytes.to_string b in
      (* strictness: either rejected, or accepted as exactly the request
         the mutated text canonically names (e.g. a digit flip that
         still parses) — never a silent disagreement *)
      match Wire.request_of_canonical mutated with
      | Error _ -> true
      | Ok req' -> Sim.canonical req' = mutated)

(* Floats cross the wire as IEEE-754 bit patterns; any bit pattern,
   including NaNs and infinities, must survive.  Compare by bits. *)
let bits = Int64.bits_of_float

let float_of_bits_gen =
  Gen.(map Int64.float_of_bits (map Int64.of_int int))

let reason_gen =
  Gen.(oneof [ string_size (int_bound 40); return ""; return "a b\nc \xff" ])

let server_msg_gen =
  Gen.(
    oneof
      [
        map2 (fun rid p -> Wire.Accepted { rid; position = p }) small_nat
          small_nat;
        map2 (fun rid reason -> Wire.Overloaded { rid; reason }) small_nat
          reason_gen;
        map2 (fun rid reason -> Wire.Rejected { rid; reason }) small_nat
          reason_gen;
        map3
          (fun rid (a, b) e ->
            Wire.Progress
              {
                Wire.g_rid = rid;
                g_phases = a;
                g_refs = b;
                g_misses = a + b;
                g_elapsed_s = e;
              })
          small_nat (pair small_nat small_nat) float_of_bits_gen;
        map
          (fun kvs -> Wire.Stats_reply kvs)
          (small_list (pair (string_size (int_bound 12)) small_nat));
        return Wire.Pong;
      ])

let server_msg_eq a b =
  match (a, b) with
  | Wire.Progress g, Wire.Progress g' ->
    g.Wire.g_rid = g'.Wire.g_rid
    && g.Wire.g_phases = g'.Wire.g_phases
    && g.Wire.g_refs = g'.Wire.g_refs
    && g.Wire.g_misses = g'.Wire.g_misses
    && bits g.Wire.g_elapsed_s = bits g'.Wire.g_elapsed_s
  | a, b -> a = b

let t_server_msg_roundtrip =
  Test.make ~count:200 ~name:"wire: server message round-trip (float bits)"
    (make server_msg_gen) (fun msg ->
      match Wire.server_msg_of_payload (Wire.server_msg_to_payload msg) with
      | Ok msg' -> server_msg_eq msg msg'
      | Error m -> Test.fail_reportf "decode failed: %s" m)

let results_identical (a : Exec.result) (b : Exec.result) =
  bits a.Exec.cycles = bits b.Exec.cycles
  && Array.map bits a.Exec.phase_cycles = Array.map bits b.Exec.phase_cycles
  && bits a.Exec.barrier_cycles = bits b.Exec.barrier_cycles
  && a.Exec.total_refs = b.Exec.total_refs
  && a.Exec.total_misses = b.Exec.total_misses
  && a.Exec.cold_misses = b.Exec.cold_misses
  && a.Exec.tlb_misses = b.Exec.tlb_misses
  && a.Exec.proc_misses = b.Exec.proc_misses

let sample_result =
  lazy
    (Exec.run_request
       (Sim.fused ~mode:Sim.Miss_only ~machine:Machine.convex ~nprocs:4
          ~strip:8
          (Lf_kernels.Jacobi.program ~n:24 ())))

let t_result_roundtrip =
  Test.make ~count:60 ~name:"wire: Result frame round-trip (float bits)"
    (triple small_nat bool (make float_of_bits_gen))
    (fun (rid, from_store, wall_s) ->
      let result = Lazy.force sample_result in
      let msg = Wire.Result { rid; from_store; wall_s; result } in
      match Wire.server_msg_of_payload (Wire.server_msg_to_payload msg) with
      | Ok (Wire.Result r) ->
        r.rid = rid && r.from_store = from_store
        && bits r.wall_s = bits wall_s
        && results_identical r.result result
      | Ok _ -> false
      | Error m -> Test.fail_reportf "decode failed: %s" m)

let t_garbage_payload =
  Test.make ~count:200 ~name:"wire: arbitrary payload bytes never raise"
    (string_gen Gen.char) (fun s ->
      (match Wire.client_msg_of_payload s with Ok _ | Error _ -> ());
      (match Wire.server_msg_of_payload s with Ok _ | Error _ -> ());
      (match Wire.request_of_canonical s with Ok _ | Error _ -> ());
      (match Wire.result_of_string s with Ok _ | Error _ -> ());
      true)

(* ------------------------------------------------------------------ *)
(* Framed I/O over a socketpair.                                       *)

let frame_io () =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let payload = "R binary \x00\xff\x80 bytes" in
  Wire.write_frame a payload;
  (match Wire.read_frame b with
  | Ok p -> Alcotest.(check string) "payload survives framing" payload p
  | Error e -> Alcotest.failf "read_frame: %s" (Wire.read_error_to_string e));
  (* clean close between frames = Eof *)
  Unix.close a;
  (match Wire.read_frame b with
  | Error Wire.Eof -> ()
  | Ok _ -> Alcotest.fail "expected Eof"
  | Error e -> Alcotest.failf "expected Eof, got %s"
                 (Wire.read_error_to_string e));
  Unix.close b;
  (* close inside a frame = Truncated *)
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let header = Bytes.create 4 in
  Bytes.set_int32_be header 0 100l;
  ignore (Unix.write a header 0 4);
  ignore (Unix.write_substring a "only ten b" 0 10);
  Unix.close a;
  (match Wire.read_frame b with
  | Error Wire.Truncated -> ()
  | Ok _ -> Alcotest.fail "expected Truncated"
  | Error e -> Alcotest.failf "expected Truncated, got %s"
                 (Wire.read_error_to_string e));
  Unix.close b;
  (* absurd length prefix = Oversized, nothing allocated or read *)
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Bytes.set_int32_be header 0 0x7fff_ffffl;
  ignore (Unix.write a header 0 4);
  (match Wire.read_frame b with
  | Error (Wire.Oversized n) ->
    Alcotest.(check bool) "oversized length reported" true (n > Wire.max_frame)
  | Ok _ -> Alcotest.fail "expected Oversized"
  | Error e -> Alcotest.failf "expected Oversized, got %s"
                 (Wire.read_error_to_string e));
  Unix.close a;
  Unix.close b

(* ------------------------------------------------------------------ *)
(* DRR admission queue.                                                *)

let drr_rejects () =
  let q = Drr.create ~quantum:4 ~max_inflight:3 ~max_client_queue:2 () in
  let a = Drr.register q and b = Drr.register q in
  Alcotest.(check bool) "1st" true (Drr.submit q ~client:a ~cost:1 "a1" = Ok 1);
  Alcotest.(check bool) "2nd" true (Drr.submit q ~client:a ~cost:1 "a2" = Ok 2);
  (match Drr.submit q ~client:a ~cost:1 "a3" with
  | Error Drr.Queue_full -> ()
  | r -> Alcotest.failf "expected Queue_full, got %s"
           (match r with
           | Ok n -> Printf.sprintf "Ok %d" n
           | Error e -> Drr.reject_to_string e));
  Alcotest.(check bool) "b fits" true
    (Drr.submit q ~client:b ~cost:1 "b1" = Ok 3);
  (match Drr.submit q ~client:b ~cost:1 "b2" with
  | Error Drr.Server_full -> ()
  | _ -> Alcotest.fail "expected Server_full");
  Alcotest.(check int) "queued" 3 (Drr.queued q);
  Drr.drain q;
  (match Drr.submit q ~client:b ~cost:1 "b3" with
  | Error Drr.Draining -> ()
  | _ -> Alcotest.fail "expected Draining");
  (* draining still delivers what was admitted *)
  let rec count n = match Drr.next q with
    | Some _ -> Drr.job_done q; count (n + 1)
    | None -> n
  in
  Alcotest.(check int) "admitted jobs all delivered" 3 (count 0)

let drr_fairness () =
  let q = Drr.create ~quantum:4 ~max_inflight:100 ~max_client_queue:50 () in
  let flood = Drr.register q and single = Drr.register q in
  for i = 0 to 9 do
    match Drr.submit q ~client:flood ~cost:4 (Printf.sprintf "f%d" i) with
    | Ok _ -> ()
    | Error e -> Alcotest.failf "flood submit: %s" (Drr.reject_to_string e)
  done;
  (match Drr.submit q ~client:single ~cost:4 "single" with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "single submit: %s" (Drr.reject_to_string e));
  (* equal-cost clients alternate under DRR: the single job must be
     dispatched within the first round, not after the whole flood *)
  let rec first_jobs n acc =
    if n = 0 then List.rev acc
    else
      match Drr.next q with
      | Some j -> Drr.job_done q; first_jobs (n - 1) (j :: acc)
      | None -> List.rev acc
  in
  let first3 = first_jobs 3 [] in
  Alcotest.(check bool)
    (Printf.sprintf "single job within first round (got %s)"
       (String.concat "," first3))
    true
    (List.mem "single" first3);
  Drr.unregister q flood;
  Alcotest.(check int) "unregister drops queued jobs" 0 (Drr.queued q)

(* ------------------------------------------------------------------ *)
(* Batch counter scopes (satellite: per-connection accounting).        *)

let counter_scopes () =
  let dir = Filename.temp_file "lf_scope" "" in
  Sys.remove dir;
  let store = Batch.Store.open_ ~dir () in
  let req =
    Sim.fused ~mode:Sim.Miss_only ~machine:Machine.convex ~nprocs:4 ~strip:8
      (Lf_kernels.Jacobi.program ~n:24 ())
  in
  let s1 = Batch.Counters.create () and s2 = Batch.Counters.create () in
  let h0 = Batch.hit_count () and c0 = Batch.computed_count () in
  ignore (Batch.run_one ~store ~scope:s1 req);
  Alcotest.(check (pair int int)) "scope1: first run computes" (0, 1)
    (Batch.Counters.hits s1, Batch.Counters.computed s1);
  (match Batch.try_store ~scope:s2 store req with
  | Some _ -> ()
  | None -> Alcotest.fail "expected a store hit");
  ignore (Batch.run_one ~store ~scope:s2 req);
  Alcotest.(check (pair int int)) "scope2 counts its own traffic" (2, 0)
    (Batch.Counters.hits s2, Batch.Counters.computed s2);
  Alcotest.(check (pair int int)) "scope1 unaffected by scope2" (0, 1)
    (Batch.Counters.hits s1, Batch.Counters.computed s1);
  (* the process-wide view still aggregates everything *)
  Alcotest.(check (pair int int)) "process-wide totals" (2, 1)
    (Batch.hit_count () - h0, Batch.computed_count () - c0);
  Batch.Counters.reset s2;
  Alcotest.(check (pair int int)) "reset zeroes the scope" (0, 0)
    (Batch.Counters.hits s2, Batch.Counters.computed s2);
  ignore (Batch.Store.clear store);
  (try Unix.rmdir dir with _ -> ())

(* ------------------------------------------------------------------ *)
(* Live server tests.                                                  *)

let fresh_paths tag =
  let dir = Filename.temp_file ("lf_serve_" ^ tag) "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  (dir, Filename.concat dir "s.sock", Filename.concat dir "store")

let rm_rf dir =
  ignore (Sys.command (Printf.sprintf "rm -rf %s" (Filename.quote dir)))

let test_cfg ~socket ~store_dir =
  let dc = Serve.default_config () in
  {
    dc with
    Serve.socket;
    workers = 2;
    max_inflight = 8;
    max_client_queue = 4;
    store_dir = Some store_dir;
    progress_interval_s = 0.05;
    verbose = false;
  }

let test_requests () =
  let jacobi = Lf_kernels.Jacobi.program ~n:32 () in
  let calc = Lf_kernels.Calc.program ~n:32 () in
  [
    Sim.fused ~mode:Sim.Miss_only ~machine:Machine.convex ~nprocs:4 ~strip:8
      jacobi;
    Sim.unfused ~mode:Sim.Run_compressed ~machine:Machine.ksr2 ~nprocs:4
      jacobi;
    Sim.fused ~mode:Sim.Run_compressed ~machine:Machine.convex ~nprocs:4
      ~strip:8 calc;
  ]

let server_robustness () =
  let dir, socket, store_dir = fresh_paths "robust" in
  let t = Serve.start (test_cfg ~socket ~store_dir) in
  Fun.protect
    ~finally:(fun () ->
      Serve.stop t;
      rm_rf dir)
    (fun () ->
      (* 1. well-framed garbage payload: Rejected, connection survives *)
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.connect fd (Unix.ADDR_UNIX socket);
      Wire.write_frame fd "Znot a message";
      (match Wire.read_frame fd with
      | Ok p -> (
        match Wire.server_msg_of_payload p with
        | Ok (Wire.Rejected _) -> ()
        | _ -> Alcotest.fail "expected Rejected for garbage payload")
      | Error e -> Alcotest.failf "read: %s" (Wire.read_error_to_string e));
      (* same connection still answers pings *)
      Wire.write_frame fd (Wire.client_msg_to_payload Wire.Ping);
      (match Wire.read_frame fd with
      | Ok p -> (
        match Wire.server_msg_of_payload p with
        | Ok Wire.Pong -> ()
        | _ -> Alcotest.fail "expected Pong after rejected garbage")
      | Error e -> Alcotest.failf "read: %s" (Wire.read_error_to_string e));
      (* 2. a truncated frame kills only this connection *)
      let header = Bytes.create 4 in
      Bytes.set_int32_be header 0 4096l;
      ignore (Unix.write fd header 0 4);
      ignore (Unix.write_substring fd "short" 0 5);
      Unix.close fd;
      (* 3. a fresh connection is served normally afterwards *)
      let c = Client.connect ~socket () in
      Alcotest.(check bool) "server alive after broken frame" true (Client.ping c);
      (* 4. Full-mode requests are refused up front *)
      let full_req =
        Sim.fused ~mode:Sim.Full ~machine:Machine.convex ~nprocs:4 ~strip:8
          (Lf_kernels.Jacobi.program ~n:32 ())
      in
      (match Client.request_sync c ~rid:7 full_req with
      | Ok (Client.Rejected _) -> ()
      | Ok _ -> Alcotest.fail "Full-mode request must be Rejected"
      | Error e -> Alcotest.failf "transport: %s" e);
      Client.close c;
      (* 5. disconnecting mid-request leaves the server healthy *)
      let c = Client.connect ~socket () in
      let slow =
        Sim.fused ~mode:Sim.Miss_only ~machine:Machine.convex ~nprocs:4
          ~strip:8 ~steps:10
          (Lf_kernels.Jacobi.program ~n:48 ())
      in
      Client.send c (Wire.Request { rid = 99; req = slow });
      Client.close c;
      (* the worker will compute and hit EPIPE on delivery *)
      let c = Client.connect ~socket () in
      (match Client.request_sync c ~rid:1 (List.hd (test_requests ())) with
      | Ok (Client.Served _) -> ()
      | Ok _ -> Alcotest.fail "expected Served after mid-request disconnect"
      | Error e -> Alcotest.failf "transport: %s" e);
      Client.close c)

let server_bit_identity () =
  let dir, socket, store_dir = fresh_paths "ident" in
  let t = Serve.start (test_cfg ~socket ~store_dir) in
  Fun.protect
    ~finally:(fun () ->
      Serve.stop t;
      rm_rf dir)
    (fun () ->
      let reqs = test_requests () in
      (* local references, bit-exact by the engine's determinism *)
      let refs = List.map Exec.run_request reqs in
      (* three concurrent client domains, each its own connection and
         full pass over the request list; first computes, rest hit *)
      let client_pass i =
        let c = Client.connect ~socket () in
        let got =
          List.mapi
            (fun j req ->
              match Client.request_sync c ~rid:((i * 100) + j) req with
              | Ok (Client.Served s) -> s.Client.result
              | Ok (Client.Overloaded r) -> failwith ("overloaded: " ^ r)
              | Ok (Client.Rejected r) -> failwith ("rejected: " ^ r)
              | Error e -> failwith ("transport: " ^ e))
            reqs
        in
        let st =
          match Client.stats c with Ok kvs -> kvs | Error e -> failwith e
        in
        Client.close c;
        (got, st)
      in
      let domains = List.init 3 (fun i -> Domain.spawn (fun () -> client_pass i)) in
      let passes = List.map Domain.join domains in
      List.iteri
        (fun i (got, stats) ->
          List.iteri
            (fun j (r, r') ->
              Alcotest.(check bool)
                (Printf.sprintf "client %d request %d bit-identical" i j)
                true (results_identical r r'))
            (List.combine got refs);
          (* per-connection scope accounting: every request this client
             sent is either a hit or computed, nothing more or less *)
          let v k = try List.assoc k stats with Not_found -> -1 in
          Alcotest.(check int)
            (Printf.sprintf "client %d conn counters" i)
            (List.length reqs)
            (v "conn_hits" + v "conn_computed"))
        passes;
      (* the store now holds every unique request: one more pass is
         all fast-path hits *)
      let c = Client.connect ~socket () in
      List.iteri
        (fun j req ->
          match Client.request_sync c ~rid:(900 + j) req with
          | Ok (Client.Served s) ->
            Alcotest.(check bool)
              (Printf.sprintf "warm pass %d from store" j)
              true s.Client.from_store;
            Alcotest.(check int)
              (Printf.sprintf "warm pass %d fast path (position 0)" j)
              0 s.Client.position
          | Ok _ -> Alcotest.fail "warm pass refused"
          | Error e -> Alcotest.failf "transport: %s" e)
        reqs;
      Client.close c)

let server_saturation () =
  let dir, socket, store_dir = fresh_paths "sat" in
  let dc = Serve.default_config () in
  let t =
    Serve.start
      {
        dc with
        Serve.socket;
        workers = 1;
        max_inflight = 2;
        max_client_queue = 8;
        store_dir = Some store_dir;
        progress_interval_s = 0.05;
        verbose = false;
      }
  in
  Fun.protect
    ~finally:(fun () ->
      Serve.stop t;
      rm_rf dir)
    (fun () ->
      let c = Client.connect ~socket () in
      (* a slow job occupies the single worker; with max_inflight 2
         only one more admission fits, the rest must be Overloaded *)
      let slow =
        Sim.fused ~mode:Sim.Miss_only ~machine:Machine.convex ~nprocs:4
          ~strip:8 ~steps:20
          (Lf_kernels.Jacobi.program ~n:256 ())
      in
      let quick i =
        Sim.fused ~mode:Sim.Miss_only ~machine:Machine.convex ~nprocs:4
          ~strip:8
          (Lf_kernels.Jacobi.program ~n:(24 + (4 * i)) ())
      in
      Client.send c (Wire.Request { rid = 0; req = slow });
      for i = 1 to 4 do
        Client.send c (Wire.Request { rid = i; req = quick i })
      done;
      (* collect frames until every rid has its terminal reply *)
      let terminal = Hashtbl.create 8 in
      let progress_seen = ref false in
      let overloaded = ref 0 in
      while Hashtbl.length terminal < 5 do
        match Client.recv c with
        | Ok (Wire.Accepted _) -> ()
        | Ok (Wire.Progress _) -> progress_seen := true
        | Ok (Wire.Overloaded { rid; _ }) ->
          incr overloaded;
          Hashtbl.replace terminal rid `Overloaded
        | Ok (Wire.Rejected { rid; _ }) -> Hashtbl.replace terminal rid `Rejected
        | Ok (Wire.Result { rid; _ }) -> Hashtbl.replace terminal rid `Served
        | Ok _ -> Alcotest.fail "unexpected frame"
        | Error e -> Alcotest.failf "read: %s" (Wire.read_error_to_string e)
      done;
      Client.close c;
      Alcotest.(check bool)
        (Printf.sprintf "saturating burst sheds load (%d overloaded)"
           !overloaded)
        true
        (!overloaded >= 1);
      Alcotest.(check bool) "slow job streamed progress" true !progress_seen;
      Alcotest.(check bool) "bounded queue: at most 2 admitted" true
        (5 - !overloaded <= 2))

let server_stop_releases_socket () =
  let dir, socket, store_dir = fresh_paths "stop" in
  let t = Serve.start (test_cfg ~socket ~store_dir) in
  let c = Client.connect ~socket () in
  Alcotest.(check bool) "live" true (Client.ping c);
  Client.close c;
  Serve.stop t;
  Serve.stop t;
  (* idempotent *)
  Alcotest.(check bool) "socket file removed" false (Sys.file_exists socket);
  (match Client.connect ~socket () with
  | c ->
    Client.close c;
    Alcotest.fail "connect succeeded after stop"
  | exception Unix.Unix_error _ -> ());
  (* the port is reusable: a second server binds the same path *)
  let t2 = Serve.start (test_cfg ~socket ~store_dir) in
  let c = Client.connect ~socket () in
  Alcotest.(check bool) "rebound" true (Client.ping c);
  Client.close c;
  Serve.stop t2;
  rm_rf dir

let suite =
  [
    Tutil.to_alcotest t_request_roundtrip;
    Tutil.to_alcotest t_request_frame_roundtrip;
    Tutil.to_alcotest t_request_truncation;
    Tutil.to_alcotest t_request_mutation;
    Tutil.to_alcotest t_server_msg_roundtrip;
    Tutil.to_alcotest t_result_roundtrip;
    Tutil.to_alcotest t_garbage_payload;
    Alcotest.test_case "frame I/O over a socketpair" `Quick frame_io;
    Alcotest.test_case "drr: bounded queues reject" `Quick drr_rejects;
    Alcotest.test_case "drr: flooding client cannot starve" `Quick
      drr_fairness;
    Alcotest.test_case "batch counter scopes" `Quick counter_scopes;
    Alcotest.test_case "server: malformed frames and disconnects" `Quick
      server_robustness;
    Alcotest.test_case "server: concurrent clients, bit-identity" `Quick
      server_bit_identity;
    Alcotest.test_case "server: saturation sheds load" `Quick
      server_saturation;
    Alcotest.test_case "server: stop drains and releases the socket" `Quick
      server_stop_releases_socket;
  ]
