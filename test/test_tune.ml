(* Tests for the lf_tune autotuner: memo-cache behaviour of the exact
   cost tier, determinism of the search drivers, the never-lose
   guarantee against the paper-default configuration, and (QCheck) that
   the analytic pruning tier never discards the exact-tier optimum. *)

module Ir = Lf_ir.Ir
module Machine = Lf_machine.Machine
module Space = Lf_tune.Space
module Cost = Lf_tune.Cost
module Search = Lf_tune.Search
module Tune = Lf_tune.Tune

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int

let ll18 n = Lf_kernels.Ll18.program ~n ()

let get = function
  | Ok v -> v
  | Error e -> Alcotest.failf "unexpected error: %s" e

(* ------------------------------------------------------------------ *)
(* Memo cache                                                          *)

let test_memo_hit_miss () =
  let p = ll18 32 in
  let cand = Space.paper_default ~machine:Machine.convex p in
  let cache = Cost.create_cache () in
  let a = get (Cost.exact ~cache ~machine:Machine.convex ~nprocs:2 p cand) in
  let s1 = Cost.stats cache in
  check int "one cold eval" 1 s1.Cost.misses;
  check int "no hit yet" 0 s1.Cost.hits;
  check int "one entry" 1 s1.Cost.entries;
  let b = get (Cost.exact ~cache ~machine:Machine.convex ~nprocs:2 p cand) in
  let s2 = Cost.stats cache in
  check int "second eval is a hit" 1 s2.Cost.hits;
  check int "still one cold eval" 1 s2.Cost.misses;
  check bool "memoised result identical" true
    (a.Cost.e_cycles = b.Cost.e_cycles && a.Cost.e_misses = b.Cost.e_misses)

let test_memo_key_sensitivity () =
  let p = ll18 32 in
  let cand = Space.paper_default ~machine:Machine.convex p in
  let cache = Cost.create_cache () in
  let run ~machine ~nprocs p cand =
    ignore (get (Cost.exact ~cache ~machine ~nprocs p cand))
  in
  run ~machine:Machine.convex ~nprocs:2 p cand;
  (* a different processor count, machine, candidate or program must
     each miss the cache *)
  run ~machine:Machine.convex ~nprocs:4 p cand;
  run ~machine:Machine.ksr2 ~nprocs:2 p cand;
  run ~machine:Machine.convex ~nprocs:2 p
    { cand with Space.layout = Space.Contiguous };
  run ~machine:Machine.convex ~nprocs:2 (ll18 40) cand;
  let s = Cost.stats cache in
  check int "five distinct keys" 5 s.Cost.entries;
  check int "five cold evals" 5 s.Cost.misses;
  check int "no spurious hits" 0 s.Cost.hits;
  (* and the fingerprints really differ *)
  let f1 = Cost.fingerprint ~machine:Machine.convex ~nprocs:2 p cand in
  let f2 = Cost.fingerprint ~machine:Machine.convex ~nprocs:4 p cand in
  let f3 = Cost.fingerprint ~machine:Machine.convex ~nprocs:2 (ll18 40) cand in
  check bool "nprocs in key" true (f1 <> f2);
  check bool "program in key" true (f1 <> f3);
  check bool "key deterministic" true
    (f1 = Cost.fingerprint ~machine:Machine.convex ~nprocs:2 p cand)

(* ------------------------------------------------------------------ *)
(* Deterministic search                                                *)

let test_beam_deterministic () =
  let p = ll18 48 in
  let driver = Search.Beam { width = 6; budget = 32 } in
  let run () =
    get
      (Search.run
         ~cache:(Cost.create_cache ())
         ~driver ~machine:Machine.ksr2 ~nprocs:4 p)
  in
  let a = run () and b = run () in
  check bool "same best candidate" true (a.Search.best = b.Search.best);
  check bool "same best cycles" true
    (a.Search.best_cost.Cost.e_cycles = b.Search.best_cost.Cost.e_cycles);
  check int "same exact evals" a.Search.considered b.Search.considered

let test_budget_respected () =
  let p = ll18 48 in
  let o =
    get
      (Search.run
         ~driver:(Search.Beam { width = 4; budget = 4 })
         ~machine:Machine.convex ~nprocs:2 p)
  in
  (* width 4 plus the always-evaluated reference *)
  check bool "beam width caps exact tier" true (o.Search.considered <= 5);
  check bool "space larger than beam" true (o.Search.space_size > 5)

(* ------------------------------------------------------------------ *)
(* Never-lose guarantee                                                *)

let test_never_worse_than_default () =
  let codes =
    [
      ("ll18", ll18 48, 1);
      ("calc", Lf_kernels.Calc.program ~n:48 (), 1);
      ("filter", Lf_kernels.Filter.program ~rows:48 ~cols:32 (), 1);
      ("jacobi", Lf_kernels.Jacobi.program ~n:32 (), 2);
    ]
  in
  let cache = Cost.create_cache () in
  List.iter
    (fun (name, p, depth) ->
      List.iter
        (fun machine ->
          List.iter
            (fun nprocs ->
              let o =
                get (Tune.tune ~depth ~cache ~machine ~nprocs p)
              in
              let label =
                Printf.sprintf "%s/%s/P%d tuned <= default" name
                  machine.Machine.mname nprocs
              in
              check bool label true
                (o.Search.best_cost.Cost.e_cycles
                 <= o.Search.default_cost.Cost.e_cycles);
              check bool (label ^ " (improvement >= 0)") true
                (Tune.improvement_pct o >= 0.0))
            [ 1; 4 ])
        [ Machine.ksr2; Machine.convex ])
    codes

let test_default_is_paper_for_kernels () =
  let o = get (Tune.tune ~machine:Machine.convex ~nprocs:2 (ll18 48)) in
  check bool "reference is the paper default" true o.Search.default_is_paper;
  check bool "paper default enumerated first" true
    (List.hd (Space.enumerate ~machine:Machine.convex (ll18 48))
    = Space.paper_default ~machine:Machine.convex (ll18 48))

(* ------------------------------------------------------------------ *)
(* QCheck: the analytic tier never prunes the exact optimum            *)

let gen_chain =
  let open QCheck.Gen in
  let* nnests = int_range 2 4 in
  let* offsets =
    list_repeat nnests (list_size (int_range 1 2) (int_range (-2) 2))
  in
  let* hi = int_range 24 64 in
  return (Tutil.chain_program ~lo:3 ~hi offsets, offsets, hi)

let arb_chain =
  QCheck.make
    ~print:(fun (_, offs, hi) ->
      Printf.sprintf "hi=%d offsets=%s" hi
        (String.concat ";"
           (List.map
              (fun l -> String.concat "," (List.map string_of_int l))
              offs)))
    gen_chain

let prop_prune_keeps_optimum =
  QCheck.Test.make ~count:30
    ~name:"analytic tier never prunes the exact optimum" arb_chain
    (fun (p, _, _) ->
      let machine = Machine.convex and nprocs = 2 in
      let scored =
        List.filter_map
          (fun c ->
            match Cost.analytic ~machine ~nprocs p c with
            | Ok est -> Some (c, est)
            | Error _ -> None)
          (Space.enumerate ~machine p)
      in
      let cache = Cost.create_cache () in
      let exacts =
        List.filter_map
          (fun (c, _) ->
            match Cost.exact ~cache ~machine ~nprocs p c with
            | Ok e -> Some (c, e.Cost.e_cycles)
            | Error _ -> None)
          scored
      in
      match exacts with
      | [] -> true
      | first :: rest ->
        let best, _ =
          List.fold_left
            (fun (bc, be) (c, e) -> if e < be then (c, e) else (bc, be))
            first rest
        in
        let kept = Search.prune ~margin:4.0 ~keep:12 scored in
        List.exists (fun (c, _) -> c = best) kept)

(* ------------------------------------------------------------------ *)

let suite =
  [
    ("memo cache hit/miss", `Quick, test_memo_hit_miss);
    ("memo key sensitivity", `Quick, test_memo_key_sensitivity);
    ("beam search deterministic", `Quick, test_beam_deterministic);
    ("beam budget respected", `Quick, test_budget_respected);
    ("never worse than paper default", `Slow, test_never_worse_than_default);
    ("reference is paper default", `Quick, test_default_is_paper_for_kernels);
    Tutil.to_alcotest prop_prune_keeps_optimum;
  ]
