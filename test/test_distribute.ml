(* Tests for loop distribution (fission into pi-blocks). *)

module Ir = Lf_ir.Ir
module Interp = Lf_ir.Interp
module Distribute = Lf_core.Distribute

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int

let test_lex_sign () =
  check int "positive" 1 (Distribute.lex_sign [| 0; 0; 2 |]);
  check int "negative" (-1) (Distribute.lex_sign [| 0; -1; 5 |]);
  check int "zero" 0 (Distribute.lex_sign [| 0; 0 |])

let test_scc_simple () =
  (* 0 -> 1 -> 2, plus 2 -> 1 making {1,2} a component *)
  let comps = Distribute.scc ~nodes:3 ~edges:[ (0, 1); (1, 2); (2, 1) ] in
  check int "two components" 2 (List.length comps);
  check bool "0 first" true (List.hd comps = [ 0 ]);
  check bool "cycle together" true
    (List.sort compare (List.nth comps 1) = [ 1; 2 ])

let test_scc_topological () =
  let comps = Distribute.scc ~nodes:4 ~edges:[ (2, 0); (0, 1); (3, 2) ] in
  (* order must satisfy 3 before 2 before 0 before 1 *)
  let pos x =
    let rec go i = function
      | [] -> -1
      | c :: rest -> if List.mem x c then i else go (i + 1) rest
    in
    go 0 comps
  in
  check bool "3 before 2" true (pos 3 < pos 2);
  check bool "2 before 0" true (pos 2 < pos 0);
  check bool "0 before 1" true (pos 0 < pos 1)

let test_single_statement_identity () =
  let p = Lf_kernels.Jacobi.program ~n:16 () in
  let n = List.hd p.Ir.nests in
  check int "one block" 1 (Distribute.pi_blocks n)

let test_ll18_l1_splits () =
  (* L1's za and zb statements are independent: two pi-blocks *)
  let p = Lf_kernels.Ll18.program ~n:16 () in
  let l1 = Ir.find_nest p "L1" in
  check int "za/zb split" 2 (Distribute.pi_blocks l1)

let test_ll18_distribute_semantics () =
  let p = Lf_kernels.Ll18.program ~n:24 () in
  let q = Distribute.distribute p in
  check bool "more nests" true
    (List.length q.Ir.nests > List.length p.Ir.nests);
  check bool "semantics preserved" true
    (Interp.equal (Interp.run p) (Interp.run q))

let test_dependent_statements_stay_ordered () =
  (* S1 writes t, S2 reads t (same iteration): split but S1's nest
     first, and semantics preserved *)
  let i o = Ir.av ~c:o "i" in
  let p =
    {
      Ir.pname = "pair";
      decls =
        List.map (fun a -> { Ir.aname = a; extents = [ 32 ] })
          [ "x"; "t"; "y" ];
      nests =
        [
          {
            Ir.nid = "L";
            levels = [ { Ir.lvar = "i"; lo = 1; hi = 30; parallel = true } ];
            body =
              [
                Ir.stmt (Ir.aref "t" [ i 0 ]) (Ir.Read (Ir.aref "x" [ i 0 ]));
                Ir.stmt (Ir.aref "y" [ i 0 ]) (Ir.Read (Ir.aref "t" [ i 0 ]));
              ];
          };
        ];
    }
  in
  Ir.validate p;
  let q = Distribute.distribute p in
  check int "two nests" 2 (List.length q.Ir.nests);
  let first = List.hd q.Ir.nests in
  check bool "producer first" true
    ((List.hd first.Ir.body).Ir.lhs.Ir.array = "t");
  check bool "semantics" true (Interp.equal (Interp.run p) (Interp.run q))

let test_cycle_stays_together () =
  (* S1 reads t[i-1] writes u[i]; S2 reads u[i] writes t[i]:
     u flows S1->S2 at 0, t flows S2->S1 at +1: a cycle *)
  let i o = Ir.av ~c:o "i" in
  let p =
    {
      Ir.pname = "cycle";
      decls =
        List.map (fun a -> { Ir.aname = a; extents = [ 32 ] }) [ "t"; "u" ];
      nests =
        [
          {
            Ir.nid = "L";
            levels = [ { Ir.lvar = "i"; lo = 1; hi = 30; parallel = false } ];
            body =
              [
                Ir.stmt (Ir.aref "u" [ i 0 ])
                  (Ir.Read (Ir.aref "t" [ i (-1) ]));
                Ir.stmt (Ir.aref "t" [ i 0 ]) (Ir.Read (Ir.aref "u" [ i 0 ]));
              ];
          };
        ];
    }
  in
  Ir.validate p;
  check int "single pi-block" 1
    (Distribute.pi_blocks (List.hd p.Ir.nests))

let test_distribute_then_fuse_roundtrip () =
  (* distributing and then fusing with shift-and-peel still matches *)
  let p = Lf_kernels.Ll18.program ~n:24 () in
  let q = Distribute.distribute p in
  let sched = Lf_core.Schedule.fused ~nprocs:3 ~strip:4 q in
  let st =
    Lf_core.Schedule.execute ~order:Lf_core.Schedule.Interleaved sched
  in
  check bool "distribute+fuse == original" true
    (Interp.equal (Interp.run p) st)

let test_distribute_all_kernels_semantics () =
  List.iter
    (fun p ->
      let q = Distribute.distribute p in
      check bool (p.Ir.pname ^ " preserved") true
        (Interp.equal (Interp.run p) (Interp.run q)))
    [
      Lf_kernels.Calc.program ~n:20 ();
      Lf_kernels.Filter.program ~rows:20 ~cols:12 ();
      Lf_kernels.Jacobi.program ~n:20 ();
    ]

let suite =
  [
    ("lex sign", `Quick, test_lex_sign);
    ("scc simple", `Quick, test_scc_simple);
    ("scc topological", `Quick, test_scc_topological);
    ("single statement identity", `Quick, test_single_statement_identity);
    ("ll18 L1 splits", `Quick, test_ll18_l1_splits);
    ("ll18 distribute semantics", `Quick, test_ll18_distribute_semantics);
    ("dependent statements ordered", `Quick, test_dependent_statements_stay_ordered);
    ("cycle stays together", `Quick, test_cycle_stays_together);
    ("distribute then fuse roundtrip", `Quick, test_distribute_then_fuse_roundtrip);
    ("all kernels semantics", `Quick, test_distribute_all_kernels_semantics);
  ]
