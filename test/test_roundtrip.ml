(* The emit/parse/derive loop, closed for all six kernels.

   Two halves:

   1. Textual round-trip: printing a kernel with [Ir.program_to_string],
      re-parsing it with [Lf_front.Parse], and re-running the derivation
      yields exactly the shift and peel vectors of the original IR (and
      the parsed program itself is structurally identical).

   2. Codegen emission: the fused code generators accept every kernel's
      derivation and the emitted text carries the derived shift/peel
      structure (shifted subscripts, the barrier, peel guards).  The
      generators emit the paper's C-like pseudocode — max/min bounds and
      BARRIER are not in the front-end grammar, so the textual
      round-trip above is what closes the parse loop. *)

module Ir = Lf_ir.Ir
module Derive = Lf_core.Derive
module Codegen = Lf_core.Codegen
module Dep = Lf_dep.Dep

(* The six kernels of the evaluation, with their fusion depth. *)
let kernels () =
  [
    ("ll18", Lf_kernels.Ll18.program ~n:32 (), 1);
    ("calc", Lf_kernels.Calc.program ~n:32 (), 1);
    ("filter", Lf_kernels.Filter.program ~rows:24 ~cols:20 (), 1);
    ("jacobi", Lf_kernels.Jacobi.program ~n:24 (), 2);
    ("fig9", Tutil.chain_program ~name:"fig9" ~lo:2 ~hi:30
       [ [ 0 ]; [ 1; -1 ]; [ 1; -1 ] ], 1);
    ("tomcatv-seq1",
     List.hd (Lf_kernels.Apps.tomcatv ~n:33 ()).Lf_kernels.Apps.sequences, 1);
  ]

let int_matrix = Alcotest.(array (array int))

let test_print_parse_derive () =
  List.iter
    (fun (name, p, depth) ->
      let d = Derive.of_program ~depth p in
      let reparsed = Lf_front.Parse.program (Ir.program_to_string p) in
      Alcotest.(check bool)
        (name ^ ": parse round-trips the program") true (reparsed = p);
      let d' = Derive.of_program ~depth reparsed in
      Alcotest.check int_matrix (name ^ ": shifts survive the round trip")
        d.Derive.shift d'.Derive.shift;
      Alcotest.check int_matrix (name ^ ": peels survive the round trip")
        d.Derive.peel d'.Derive.peel;
      Alcotest.(check int) (name ^ ": depth") d.Derive.depth d'.Derive.depth)
    (kernels ())

(* Derivation is a function of the dependence structure only, so a
   depth-1 re-derivation after the round trip must also match the
   multigraph-based derivation. *)
let test_multigraph_consistency () =
  List.iter
    (fun (name, p, depth) ->
      let reparsed = Lf_front.Parse.program (Ir.program_to_string p) in
      let g = Dep.build ~depth reparsed in
      let d = Derive.of_multigraph g in
      let d0 = Derive.of_program ~depth p in
      Alcotest.check int_matrix (name ^ ": multigraph derivation agrees")
        d0.Derive.shift d.Derive.shift)
    (kernels ())

let test_codegen_emission () =
  List.iter
    (fun (name, p, depth) ->
      let d = Derive.of_program ~depth p in
      let emitted = Codegen.multidim_to_string ~strip:8 p d in
      Alcotest.(check bool)
        (name ^ ": multidim emission nonempty") true
        (String.length emitted > 0);
      (* every nest that is shifted or peeled must leave its mark *)
      let has_peel =
        Array.exists (fun row -> Array.exists (fun q -> q > 0) row)
          d.Derive.peel
      in
      if has_peel then
        Alcotest.(check bool)
          (name ^ ": peeled iterations emitted after the barrier") true
          (Tutil.contains emitted "BARRIER");
      if depth = 1 then begin
        let multidim =
          List.exists
            (fun (n : Ir.nest) -> List.length n.Ir.levels > 1)
            p.Ir.nests
        in
        (* the direct method is strictly 1-D: multidim programs get the
           typed refusal instead of text with unbound inner variables *)
        (match Codegen.direct_to_string p d with
        | exception Codegen.Unsupported _ ->
          Alcotest.(check bool)
            (name ^ ": direct refuses only multidim programs") true multidim
        | direct ->
          Alcotest.(check bool) (name ^ ": direct is 1-D only") false multidim;
          Alcotest.(check bool)
            (name ^ ": direct emission nonempty") true
            (String.length direct > 0));
        (* strip-mined dispatches multidim programs to the multidim
           renderer; the control loop doubles the fused variable *)
        let stripped = Codegen.strip_mined_to_string ~strip:8 p d in
        let v0 =
          List.hd (Ir.nest_vars (List.hd p.Ir.nests))
        in
        Alcotest.(check bool)
          (name ^ ": strip-mined emission mentions the strip loop") true
          (Tutil.contains stripped (v0 ^ v0))
      end)
    (kernels ())

let suite =
  [
    Alcotest.test_case "print/parse/derive round trip" `Quick
      test_print_parse_derive;
    Alcotest.test_case "multigraph derivation consistency" `Quick
      test_multigraph_consistency;
    Alcotest.test_case "codegen emission for all kernels" `Quick
      test_codegen_emission;
  ]
