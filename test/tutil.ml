(* Small helpers shared by the test suites. *)

module Ir = Lf_ir.Ir

(* Reproducible QCheck runs: an explicit seed, overridable with
   LF_QCHECK_SEED, so CI failures replay deterministically. *)
let qcheck_seed =
  match Sys.getenv_opt "LF_QCHECK_SEED" with
  | Some s -> (
    match int_of_string_opt s with
    | Some n -> n
    | None -> invalid_arg ("bad LF_QCHECK_SEED: " ^ s))
  | None -> 0x5eed

(* QCheck-to-alcotest bridge seeded with [qcheck_seed].  The seed is
   printed up front so a failure report always carries it. *)
let to_alcotest cell =
  QCheck_alcotest.to_alcotest
    ~rand:(Random.State.make [| qcheck_seed |])
    ~verbose:false cell

let () =
  Printf.eprintf
    "[qcheck] seed %d (set LF_QCHECK_SEED to override and replay)\n%!"
    qcheck_seed

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i =
    if i + nn > nh then false
    else if String.sub haystack i nn = needle then true
    else go (i + 1)
  in
  nn = 0 || go 0

(* A 1-D stencil chain program: nest k writes array [a_k] reading
   [a_(k-1)] at the given offsets; array a0 is an input.  All nests are
   parallel over [lo, hi]. *)
let chain_program ?(name = "chain") ~lo ~hi offsets_per_nest =
  let n = hi + 4 in
  (* room for stencil halo *)
  let arrays = List.init (List.length offsets_per_nest + 1) (fun k ->
      Printf.sprintf "a%d" k)
  in
  let i o = Ir.av ~c:o "i" in
  let nests =
    List.mapi
      (fun k offsets ->
        let src = Printf.sprintf "a%d" k in
        let dst = Printf.sprintf "a%d" (k + 1) in
        let reads = List.map (fun o -> Ir.Read (Ir.aref src [ i o ])) offsets in
        let rhs =
          match reads with
          | [] -> Ir.Const 0.0
          | e :: es -> List.fold_left (fun a b -> Ir.Bin (Ir.Add, a, b)) e es
        in
        {
          Ir.nid = Printf.sprintf "L%d" (k + 1);
          levels = [ { Ir.lvar = "i"; lo; hi; parallel = true } ];
          body = [ Ir.stmt (Ir.aref dst [ i 0 ]) rhs ];
        })
      offsets_per_nest
  in
  let p =
    {
      Ir.pname = name;
      decls = List.map (fun a -> { Ir.aname = a; extents = [ n ] }) arrays;
      nests;
    }
  in
  Ir.validate p;
  p
