(* The lazy-array frontend (lib/lazy).

   Pillars:

   1. Bit-identity: forcing a lazily recorded DAG -- fused blocks
      through Schedule.execute, and through the Full simulation engine
      at jobs 1 and 4 -- agrees bit-for-bit with eager op-at-a-time
      interpretation, over the built-in trace workloads and random
      DAGs, with fusion on and off.

   2. Observable identity across pure engines: each block request
      replayed at Miss_only and Run_compressed produces identical
      counters.

   3. Partition determinism: the plan (and its signature) is a
      function of the DAG, not of the recording order -- commuting
      chains recorded sequentially and interleaved plan identically.

   4. Typed split reasons: shape mismatches, Theorem 1 violations and
      inter-block dependence cycles split blocks with the matching
      Plan.reason; zip over mismatched shapes is a recording error. *)

module Machine = Lf_machine.Machine
module Sim = Lf_machine.Sim
module Exec = Lf_machine.Exec
module Node = Lf_lazy.Node
module Plan = Lf_lazy.Plan
module Eval = Lf_lazy.Eval
module Arr = Lf_lazy.Arr
module Ctx = Lf_lazy.Ctx
module Trace = Lf_lazy.Trace

open QCheck

let fbits = Int64.bits_of_float

let arrays_bit_equal a b =
  Array.length a = Array.length b
  && Array.for_all2 (fun x y -> fbits x = fbits y) a b

let env_bit_equal (e1 : Eval.env) (e2 : Eval.env) =
  Hashtbl.length e1 = Hashtbl.length e2
  && Hashtbl.fold
       (fun k v acc ->
         acc
         &&
         match Hashtbl.find_opt e2 k with
         | Some v' -> arrays_bit_equal v v'
         | None -> false)
       e1 true

let trace_ctx ?(n = 64) name =
  match Trace.of_string ~n (Option.get (Trace.builtin_text name)) with
  | Ok (cx, outs) -> (cx, outs)
  | Error m -> Alcotest.failf "builtin %s: %s" name m

(* ------------------------------------------------------------------ *)
(* 1. Bit-identity on the built-in workloads *)

let check_bit_identity name =
  let cx, outs = trace_ctx name in
  let fused = Ctx.plan cx in
  let opat = Ctx.plan ~fuse:false cx in
  let reference = Eval.eager fused in
  let m_fused = Eval.materialise fused in
  let m_opat = Eval.materialise opat in
  Alcotest.(check bool)
    (name ^ ": fused == eager") true
    (env_bit_equal reference m_fused);
  Alcotest.(check bool)
    (name ^ ": op-at-a-time == eager") true
    (env_bit_equal reference m_opat);
  (* the Full engine across host-domain counts *)
  List.iter
    (fun jobs ->
      let opts = Lf_batch.Run_opts.(with_jobs jobs default) in
      let m_exec =
        Eval.materialise_exec ~opts ~machine:Machine.convex fused
      in
      Alcotest.(check bool)
        (Printf.sprintf "%s: Full engine jobs=%d == eager" name jobs)
        true
        (env_bit_equal reference m_exec))
    [ 1; 4 ];
  (* forcing an output yields the same bytes under both strategies *)
  List.iter
    (fun (oname, v) ->
      Alcotest.(check bool)
        (name ^ ": force " ^ oname)
        true
        (arrays_bit_equal (Arr.force v) (Arr.force ~fuse:false v)))
    outs

let test_bit_identity () =
  List.iter (fun (name, _) -> check_bit_identity name) Trace.builtins

(* 2. Counters identical across the two pure replay engines *)

let test_engine_observables () =
  let cx, _ = trace_ctx "heat" in
  let plan = Ctx.plan cx in
  let req_of mode = Plan.requests ~machine:Machine.convex ~mode plan in
  List.iter2
    (fun r1 r2 ->
      let a = Exec.run_request r1 and b = Exec.run_request r2 in
      Alcotest.(check bool)
        "cycles equal" true
        (fbits a.Exec.cycles = fbits b.Exec.cycles);
      Alcotest.(check int) "misses equal" a.Exec.total_misses
        b.Exec.total_misses;
      Alcotest.(check int) "refs equal" a.Exec.total_refs b.Exec.total_refs)
    (req_of Sim.Miss_only)
    (req_of Sim.Run_compressed)

(* ------------------------------------------------------------------ *)
(* Random DAGs *)

(* A recipe is replayable into any ctx: a list of abstract steps over
   a growing pool of values.  Two sources of distinct shapes seed the
   pool, so random DAGs exercise shape splits too. *)
type step =
  | SMap of int * int * int  (* unop pick, operand pick, shift *)
  | SZip of int * int * int * int * int  (* binop, op1, shift1, op2, shift2 *)

let replay_recipe ?(sources = [ ("a", 48); ("b", 24) ]) steps =
  let cx = Ctx.create () in
  let pool = ref [] in
  List.iter
    (fun (nm, n) -> pool := Arr.source cx nm [| n |] :: !pool)
    sources;
  let pick k = List.nth !pool (k mod List.length !pool) in
  let unop_of = function
    | 0 -> Node.Id
    | 1 -> Node.Neg
    | 2 -> Node.Scale 1.5
    | _ -> Node.Bias 0.25
  in
  let binop_of = function
    | 0 -> Lf_ir.Ir.Add
    | 1 -> Lf_ir.Ir.Sub
    | _ -> Lf_ir.Ir.Mul
  in
  List.iter
    (fun st ->
      let v =
        match st with
        | SMap (u, o, s) ->
            Node.map (unop_of u) (Arr.shift1 (s mod 3) (pick o))
        | SZip (b, o1, s1, o2, s2) ->
            let x = Arr.shift1 (s1 mod 3) (pick o1) in
            let y = pick o2 in
            let y =
              if Arr.shape x = Arr.shape y then Arr.shift1 (s2 mod 3) y
              else Arr.shift1 (s2 mod 3) x (* keep shapes compatible *)
            in
            Node.zip (binop_of b) x y
      in
      pool := v :: !pool)
    steps;
  (cx, !pool)

let step_gen =
  Gen.(
    oneof
      [
        map3 (fun u o s -> SMap (u, o, s)) (int_bound 3) (int_bound 7)
          (int_range (-2) 2);
        (fun st ->
          SZip
            ( int_bound 2 st,
              int_bound 7 st,
              int_range (-2) 2 st,
              int_bound 7 st,
              int_range (-2) 2 st ));
      ])

let recipe_arb = make Gen.(list_size (int_range 1 10) step_gen)

let prop_random_dag_bit_identity =
  Test.make ~count:60 ~name:"lazy: random DAG fused == op-at-a-time == eager"
    recipe_arb (fun steps ->
      let cx, _pool = replay_recipe steps in
      let fused = Ctx.plan cx in
      let reference = Eval.eager fused in
      env_bit_equal reference (Eval.materialise fused)
      && env_bit_equal reference
           (Eval.materialise (Ctx.plan ~fuse:false cx)))

let prop_partition_order_independent =
  (* two independent commuting chains recorded sequentially vs
     interleaved must produce identical plans *)
  Test.make ~count:40 ~name:"lazy: partition independent of recording order"
    (make Gen.(pair (int_range 1 5) (int_range 1 5)))
    (fun (k1, k2) ->
      let build interleaved =
        let cx = Ctx.create () in
        let a = Arr.source cx "a" [| 40 |] in
        let b = Arr.source cx "b" [| 40 |] in
        let step v i =
          Node.map (Node.Scale (1.0 +. float_of_int i)) (Arr.shift1 1 v)
        in
        if interleaved then begin
          let va = ref a and vb = ref b in
          for i = 0 to max k1 k2 - 1 do
            if i < k1 then va := step !va i;
            if i < k2 then vb := step !vb i
          done
        end
        else begin
          let va = ref a in
          for i = 0 to k1 - 1 do
            va := step !va i
          done;
          let vb = ref b in
          for i = 0 to k2 - 1 do
            vb := step !vb i
          done
        end;
        Ctx.plan cx
      in
      let p1 = build false and p2 = build true in
      Plan.signature p1 = Plan.signature p2)

(* ------------------------------------------------------------------ *)
(* 4. Typed split reasons *)

let has_reason pred plan =
  List.exists
    (fun (b : Plan.block) ->
      (match b.Plan.b_reason with Some r -> pred r | None -> false)
      || List.exists (fun (_, r) -> pred r) b.Plan.b_blocked)
    plan.Plan.blocks

let test_shape_mismatch_splits () =
  let cx, _ = trace_ctx "mismatch" in
  let plan = Ctx.plan cx in
  Alcotest.(check bool)
    "more than one block" true
    (List.length plan.Plan.blocks > 1);
  Alcotest.(check bool)
    "a Shape_mismatch reason is recorded" true
    (has_reason
       (function Plan.Shape_mismatch _ -> true | _ -> false)
       plan)

let test_threshold_splits () =
  (* shift of 4 over n=12 with 4 procs: per-proc blocks of 3 < the
     dependence distance, so Theorem 1 refuses the fusion *)
  let cx = Ctx.create () in
  let a = Arr.source cx "a" [| 12 |] in
  let b = Arr.copy a in
  let c = Arr.add (Arr.shift1 (-4) b) (Arr.shift1 4 b) in
  ignore c;
  let plan = Ctx.plan ~nprocs:4 cx in
  Alcotest.(check bool)
    "threshold violation splits" true
    (List.length plan.Plan.blocks > 1);
  Alcotest.(check bool)
    "an Illegal_fusion reason is recorded" true
    (has_reason
       (function Plan.Illegal_fusion _ -> true | _ -> false)
       plan);
  (* values still agree after the split *)
  Alcotest.(check bool)
    "split plan still bit-identical" true
    (env_bit_equal (Eval.eager plan) (Eval.materialise plan))

let test_would_cycle_reason () =
  (* A in block0; B (huge stencil) cannot fuse with block0; C consumes
     B but matches block0's shape -- joining block0 would order C
     before its producer: the refusal must be typed Would_cycle. *)
  let cx = Ctx.create () in
  let a = Arr.source cx "a" [| 12 |] in
  let b = Arr.copy a in
  let c = Arr.add (Arr.shift1 (-4) b) (Arr.shift1 4 b) in
  let d = Arr.add (Arr.shift1 (-4) c) (Arr.shift1 4 c) in
  ignore d;
  let plan = Ctx.plan ~nprocs:4 cx in
  Alcotest.(check bool)
    "a Would_cycle refusal is recorded" true
    (has_reason (function Plan.Would_cycle _ -> true | _ -> false) plan);
  Alcotest.(check bool)
    "cycle-split plan still bit-identical" true
    (env_bit_equal (Eval.eager plan) (Eval.materialise plan))

let test_zip_shape_error () =
  let cx = Ctx.create () in
  let a = Arr.source cx "a" [| 16 |] in
  let b = Arr.source cx "b" [| 8 |] in
  Alcotest.check_raises "zip shape mismatch raises"
    (Node.Error "lazy: zip shape mismatch 16 vs 8") (fun () ->
      ignore (Arr.add a b))

let test_fusion_off_reason () =
  let cx, _ = trace_ctx "heat" in
  let plan = Ctx.plan ~fuse:false cx in
  Alcotest.(check int)
    "one block per op" (Ctx.ops cx)
    (List.length plan.Plan.blocks);
  Alcotest.(check bool)
    "Fusion_off recorded" true
    (has_reason (function Plan.Fusion_off -> true | _ -> false) plan)

(* ------------------------------------------------------------------ *)
(* Structure of the built-in workloads *)

let test_builtin_structure () =
  let block_count name n =
    let cx, _ = trace_ctx ~n name in
    List.length (Ctx.plan cx).Plan.blocks
  in
  Alcotest.(check int) "heat fuses to one block" 1 (block_count "heat" 64);
  Alcotest.(check int) "pipeline fuses to one block" 1
    (block_count "pipeline" 64);
  Alcotest.(check int) "blur2 fuses to one block" 1 (block_count "blur2" 24);
  Alcotest.(check bool)
    "mismatch splits" true
    (block_count "mismatch" 64 > 1);
  (* a fused multi-op block really is shift-and-peel *)
  let cx, _ = trace_ctx "heat" in
  let plan = Ctx.plan cx in
  List.iter
    (fun (b : Plan.block) ->
      Alcotest.(check bool) "multi-op block fused" true b.Plan.b_fused)
    (List.filter
       (fun (b : Plan.block) -> List.length b.Plan.b_nodes > 1)
       plan.Plan.blocks)

let test_shift_is_free () =
  let cx = Ctx.create () in
  let a = Arr.source cx "a" [| 32 |] in
  let _ = Arr.shift1 1 (Arr.shift1 2 a) in
  Alcotest.(check int) "shift records no op" 0 (Ctx.ops cx);
  let v = Arr.shift1 1 (Arr.shift1 2 a) in
  Alcotest.(check bool)
    "offsets compose" true
    (v.Node.v_off = [| 3 |])

let test_sum_and_cache () =
  let _cx, outs = trace_ctx "heat" in
  let _, v = List.hd outs in
  let s1 = Arr.sum v in
  let s2 = Arr.sum v in
  Alcotest.(check bool) "sum deterministic" true (fbits s1 = fbits s2);
  (* the cached environment answers a repeated force *)
  let f1 = Arr.force v and f2 = Arr.force v in
  Alcotest.(check bool) "repeated force identical" true
    (arrays_bit_equal f1 f2)

let qsuite = List.map QCheck_alcotest.to_alcotest
    [ prop_random_dag_bit_identity; prop_partition_order_independent ]

let suite =
  [
    Alcotest.test_case "bit-identity: builtins, fusion on/off, jobs" `Slow
      test_bit_identity;
    Alcotest.test_case "engine observables identical" `Quick
      test_engine_observables;
    Alcotest.test_case "shape mismatch splits blocks" `Quick
      test_shape_mismatch_splits;
    Alcotest.test_case "threshold violation splits blocks" `Quick
      test_threshold_splits;
    Alcotest.test_case "inter-block cycle refusal typed" `Quick
      test_would_cycle_reason;
    Alcotest.test_case "zip shape mismatch raises" `Quick
      test_zip_shape_error;
    Alcotest.test_case "fusion off: one block per op" `Quick
      test_fusion_off_reason;
    Alcotest.test_case "builtin workloads partition as documented" `Quick
      test_builtin_structure;
    Alcotest.test_case "shift is a free view" `Quick test_shift_is_free;
    Alcotest.test_case "sum reduction and env cache" `Quick
      test_sum_and_cache;
  ]
  @ qsuite
