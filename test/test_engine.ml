(* The domain-parallel engine and the miss-only fast path.

   The tentpole invariant of the host-parallel simulator: the result of
   [Exec.run] — store, cycles, per-phase cycles, per-processor misses,
   and everything an attached sink records — is bit-identical for every
   [jobs] value.  Checked as a QCheck property over the paper's six
   kernels (LL18, calc, jacobi, filter, tomcatv, hydro2d) with random
   grids, strips, layouts and jobs in 1..8, and directed tests for the
   miss-only mode, explicit pools, and the LF_JOBS default. *)

module Ir = Lf_ir.Ir
module Interp = Lf_ir.Interp
module Schedule = Lf_core.Schedule
module Partition = Lf_core.Partition
module Machine = Lf_machine.Machine
module Exec = Lf_machine.Exec
module Cache = Lf_cache.Cache
module Obs = Lf_obs.Obs
module Pool = Lf_parallel.Pool

open QCheck

(* ------------------------------------------------------------------ *)
(* Kernel pool: the six programs of the paper's evaluation, scaled to
   test size.  Apps contribute their first fusible sequence. *)

let kernels : (string * (int -> Ir.program)) array =
  [|
    ("ll18", fun n -> Lf_kernels.Ll18.program ~n ());
    ("calc", fun n -> Lf_kernels.Calc.program ~n ());
    ("jacobi", fun n -> Lf_kernels.Jacobi.program ~n ());
    ("filter", fun n -> Lf_kernels.Filter.program ~rows:n ~cols:(n / 2 + 8) ());
    ( "tomcatv",
      fun n -> List.hd (Lf_kernels.Apps.tomcatv ~n ()).Lf_kernels.Apps.sequences
    );
    ( "hydro2d",
      fun n ->
        List.hd
          (Lf_kernels.Apps.hydro2d ~rows:n ~cols:(n / 2 + 8) ())
            .Lf_kernels.Apps.sequences );
  |]

type layout_pick = L_contiguous | L_padded of int | L_partitioned

let layout_of_pick ~machine pick (p : Ir.program) =
  match pick with
  | L_contiguous -> Partition.contiguous p.Ir.decls
  | L_padded pad -> Partition.padded ~pad p.Ir.decls
  | L_partitioned ->
    Partition.cache_partitioned
      ~cache:
        {
          Partition.capacity = machine.Machine.cache.Cache.capacity;
          line = machine.Machine.cache.Cache.line;
          assoc = machine.Machine.cache.Cache.assoc;
        }
      p.Ir.decls

type case = {
  kernel : int;
  n : int;
  nprocs : int;
  strip : int;
  fuse : bool;
  pick : layout_pick;
  jobs : int;
  steps : int;
}

let gen_case =
  let open Gen in
  let* kernel = int_range 0 (Array.length kernels - 1) in
  let* n = int_range 24 48 in
  let* nprocs = int_range 1 6 in
  let* strip = int_range 2 10 in
  let* fuse = bool in
  let* pick =
    oneof
      [
        return L_contiguous;
        map (fun p -> L_padded p) (int_range 1 4);
        return L_partitioned;
      ]
  in
  let* jobs = int_range 1 8 in
  let* steps = int_range 1 2 in
  return { kernel; n; nprocs; strip; fuse; pick; jobs; steps }

let arb_case =
  make
    ~print:(fun c ->
      Printf.sprintf "%s n=%d nprocs=%d strip=%d fused=%b %s jobs=%d steps=%d"
        (fst kernels.(c.kernel))
        c.n c.nprocs c.strip c.fuse
        (match c.pick with
        | L_contiguous -> "contiguous"
        | L_padded p -> Printf.sprintf "pad:%d" p
        | L_partitioned -> "partitioned")
        c.jobs c.steps)
    gen_case

(* Full structural equality of two results, store included. *)
let results_identical (a : Exec.result) (b : Exec.result) =
  a.Exec.cycles = b.Exec.cycles
  && a.Exec.phase_cycles = b.Exec.phase_cycles
  && a.Exec.barrier_cycles = b.Exec.barrier_cycles
  && a.Exec.total_refs = b.Exec.total_refs
  && a.Exec.total_misses = b.Exec.total_misses
  && a.Exec.cold_misses = b.Exec.cold_misses
  && a.Exec.tlb_misses = b.Exec.tlb_misses
  && a.Exec.proc_misses = b.Exec.proc_misses
  && Interp.equal a.Exec.store b.Exec.store

let sinks_identical a b =
  Obs.totals a = Obs.totals b
  && Obs.proc_misses a = Obs.proc_misses b
  && Obs.barrier_cycles a = Obs.barrier_cycles b
  && Obs.trace_json a = Obs.trace_json b

let schedule_of_case c p =
  if c.fuse then Schedule.fused ~nprocs:c.nprocs ~strip:c.strip p
  else Schedule.unfused ~nprocs:c.nprocs p

let prop_parallel_identical ~machine name =
  Test.make ~count:50
    ~name:("jobs>1 is bit-identical to serial (" ^ name ^ ")")
    arb_case
    (fun c ->
      let _, mk = kernels.(c.kernel) in
      let p = mk c.n in
      match schedule_of_case c p with
      | exception Schedule.Illegal _ -> true
      | exception Invalid_argument _ -> true (* more procs than iters *)
      | sched ->
        let layout = layout_of_pick ~machine c.pick p in
        let s_sink = Obs.create () and j_sink = Obs.create () in
        let serial =
          Exec.run ~sink:s_sink ~layout ~machine ~steps:c.steps ~jobs:1 sched
        in
        let par =
          Exec.run ~sink:j_sink ~layout ~machine ~steps:c.steps ~jobs:c.jobs
            sched
        in
        if not (results_identical serial par) then
          Test.fail_report "parallel result differs from serial";
        if not (sinks_identical s_sink j_sink) then
          Test.fail_report "sink contents differ under jobs>1";
        true)

(* Miss-only mode: every performance observable matches the full
   simulation exactly; only the store is empty. *)
let prop_miss_only_matches ~machine name =
  Test.make ~count:40
    ~name:("miss-only counters match full simulation (" ^ name ^ ")")
    arb_case
    (fun c ->
      let _, mk = kernels.(c.kernel) in
      let p = mk c.n in
      match schedule_of_case c p with
      | exception Schedule.Illegal _ -> true
      | exception Invalid_argument _ -> true
      | sched ->
        let layout = layout_of_pick ~machine c.pick p in
        let f_sink = Obs.create () and m_sink = Obs.create () in
        let full =
          Exec.run ~sink:f_sink ~layout ~machine ~steps:c.steps ~jobs:1 sched
        in
        let miss =
          Exec.run ~sink:m_sink ~mode:Exec.Miss_only ~layout ~machine
            ~steps:c.steps ~jobs:c.jobs sched
        in
        let counters_ok =
          full.Exec.cycles = miss.Exec.cycles
          && full.Exec.phase_cycles = miss.Exec.phase_cycles
          && full.Exec.barrier_cycles = miss.Exec.barrier_cycles
          && full.Exec.total_refs = miss.Exec.total_refs
          && full.Exec.total_misses = miss.Exec.total_misses
          && full.Exec.cold_misses = miss.Exec.cold_misses
          && full.Exec.tlb_misses = miss.Exec.tlb_misses
          && full.Exec.proc_misses = miss.Exec.proc_misses
        in
        if not counters_ok then
          Test.fail_report "miss-only counters differ from full simulation";
        if not (sinks_identical f_sink m_sink) then
          Test.fail_report "miss-only sink differs from full simulation";
        true)

(* ------------------------------------------------------------------ *)
(* Run-compressed engine: bit-identity against the scalar replay        *)

(* Cache geometries the batched engine specialises on: the two machine
   presets, a non-power-of-two set count (3072 sets forces the modulo
   set-index path), and small conflict-prone caches at associativities
   1/2/4 (small capacity makes the steady-state and scalar-fallback
   paths fire, not just the all-hit fast-forward). *)
let geometries =
  let with_cache base name cache =
    { base with Machine.mname = name; cache }
  in
  [|
    ("ksr2", Machine.ksr2);
    ("convex", Machine.convex);
    ( "np2",
      with_cache Machine.convex "np2"
        { Cache.capacity = 192 * 1024; line = 64; assoc = 1 } );
    ( "small-dm",
      with_cache Machine.convex "small-dm"
        { Cache.capacity = 8 * 1024; line = 64; assoc = 1 } );
    ( "small-2w",
      with_cache Machine.ksr2 "small-2w"
        { Cache.capacity = 8 * 1024; line = 64; assoc = 2 } );
    ( "small-4w",
      with_cache Machine.ksr2 "small-4w"
        { Cache.capacity = 16 * 1024; line = 64; assoc = 4 } );
  |]

let arb_run_case =
  let open Gen in
  let gen =
    let* c = gen_case in
    let* geom = int_range 0 (Array.length geometries - 1) in
    let* jobs = oneofl [ 1; 4 ] in
    return ({ c with jobs }, geom)
  in
  make
    ~print:(fun (c, geom) ->
      Printf.sprintf "%s geom=%s n=%d nprocs=%d strip=%d fused=%b %s jobs=%d"
        (fst kernels.(c.kernel))
        (fst geometries.(geom))
        c.n c.nprocs c.strip c.fuse
        (match c.pick with
        | L_contiguous -> "contiguous"
        | L_padded p -> Printf.sprintf "pad:%d" p
        | L_partitioned -> "partitioned")
        c.jobs)
    gen

(* Every observable of the run-compressed engine — counters, cycles,
   store (empty), the attached sink's totals and event stream — must be
   bit-identical to the scalar address-stream replay, for every
   geometry and jobs count. *)
let prop_run_compressed_identical =
  Test.make ~count:120
    ~name:"run-compressed engine is bit-identical to scalar replay"
    arb_run_case
    (fun (c, geom) ->
      let _, mk = kernels.(c.kernel) in
      let p = mk c.n in
      match schedule_of_case c p with
      | exception Schedule.Illegal _ -> true
      | exception Invalid_argument _ -> true
      | sched ->
        let machine = snd geometries.(geom) in
        let layout = layout_of_pick ~machine c.pick p in
        let s_sink = Obs.create () and r_sink = Obs.create () in
        let scalar =
          Exec.run ~sink:s_sink ~mode:Exec.Miss_only ~layout ~machine
            ~steps:c.steps ~jobs:1 sched
        in
        let runs =
          Exec.run ~sink:r_sink ~mode:Exec.Run_compressed ~layout ~machine
            ~steps:c.steps ~jobs:c.jobs sched
        in
        if not (results_identical scalar runs) then
          Test.fail_report "run-compressed result differs from scalar replay";
        if not (sinks_identical s_sink r_sink) then
          Test.fail_report "run-compressed sink differs from scalar replay";
        (* recorded profiles agree table by table *)
        if
          List.exists
            (fun by -> Obs.breakdown s_sink ~by <> Obs.breakdown r_sink ~by)
            [ Obs.By_array; Obs.By_phase; Obs.By_proc ]
        then Test.fail_report "run-compressed breakdown differs";
        true)

(* The run engine must fail exactly like the scalar one on a schedule
   that walks out of bounds: same exception, same message. *)
let test_run_compressed_oob () =
  let n = 24 in
  let i = Ir.av "i" in
  let oob =
    {
      Ir.pname = "oob";
      decls =
        List.map (fun a -> { Ir.aname = a; extents = [ n ] }) [ "a"; "b" ];
      nests =
        [
          {
            Ir.nid = "L1";
            levels =
              [ { Ir.lvar = "i"; lo = 0; hi = n - 1; parallel = true } ];
            body =
              [
                Ir.stmt (Ir.aref "b" [ i ])
                  (Ir.Read (Ir.aref "a" [ Ir.av ~c:2 "i" ]));
              ];
          };
        ];
    }
  in
  let sched = Schedule.unfused ~nprocs:1 oob in
  let msg mode =
    match Exec.run ~machine:Machine.convex ~mode sched with
    | _ -> Alcotest.fail "expected Out_of_bounds"
    | exception Interp.Out_of_bounds m -> m
  in
  Alcotest.(check string)
    "identical out-of-bounds failure" (msg Exec.Miss_only)
    (msg Exec.Run_compressed)

(* ------------------------------------------------------------------ *)
(* Directed tests                                                       *)

(* The three kernels named by the issue, at a fixed size, fused and
   unfused, including proc0 (the Figures 18/20 measure). *)
let test_miss_only_directed () =
  let machine = Machine.convex in
  List.iter
    (fun (name, (p : Ir.program)) ->
      let layout = Partition.contiguous p.Ir.decls in
      List.iter
        (fun fused ->
          let sched =
            if fused then Schedule.fused ~nprocs:4 ~strip:5 p
            else Schedule.unfused ~nprocs:4 p
          in
          let full = Exec.run ~layout ~machine sched in
          let miss = Exec.run ~mode:Exec.Miss_only ~layout ~machine sched in
          let tag b = Printf.sprintf "%s fused=%b" name b in
          Alcotest.(check int)
            (tag fused ^ " misses") full.Exec.total_misses
            miss.Exec.total_misses;
          Alcotest.(check int)
            (tag fused ^ " tlb") full.Exec.tlb_misses miss.Exec.tlb_misses;
          Alcotest.(check int)
            (tag fused ^ " refs") full.Exec.total_refs miss.Exec.total_refs;
          Alcotest.(check int)
            (tag fused ^ " proc0") (Exec.proc0_misses full)
            (Exec.proc0_misses miss);
          Alcotest.(check bool)
            (tag fused ^ " cycles") true
            (full.Exec.cycles = miss.Exec.cycles))
        [ false; true ])
    [
      ("ll18", Lf_kernels.Ll18.program ~n:40 ());
      ("calc", Lf_kernels.Calc.program ~n:40 ());
      ("filter", Lf_kernels.Filter.program ~rows:40 ~cols:24 ());
    ]

(* An explicitly supplied pool is reused across runs and steps and
   produces the same bits as the internal pool and the serial engine. *)
let test_explicit_pool () =
  let p = Lf_kernels.Ll18.program ~n:32 () in
  let machine = Machine.ksr2 in
  let sched = Schedule.fused ~nprocs:4 ~strip:4 p in
  let serial = Exec.run ~machine ~steps:2 ~jobs:1 sched in
  Pool.with_pool 3 (fun pool ->
      let a = Exec.run ~machine ~steps:2 ~pool sched in
      let b = Exec.run ~machine ~steps:2 ~pool sched in
      Alcotest.(check bool) "pooled run = serial" true
        (results_identical serial a);
      Alcotest.(check bool) "pool reusable across runs" true
        (results_identical a b))

(* An out-of-bounds access raised inside a worker domain must surface
   on the caller (the pool may not strand the join), and the engine
   must stay usable afterwards. *)
let test_parallel_exception_propagates () =
  let n = 24 in
  let i = Ir.av "i" in
  let oob =
    {
      Ir.pname = "oob";
      decls =
        List.map (fun a -> { Ir.aname = a; extents = [ n ] }) [ "a"; "b" ];
      nests =
        [
          {
            Ir.nid = "L1";
            levels =
              [ { Ir.lvar = "i"; lo = 0; hi = n - 1; parallel = true } ];
            body =
              [
                (* reads a[i+2]: out of bounds at i = n-2 *)
                Ir.stmt (Ir.aref "b" [ i ])
                  (Ir.Read (Ir.aref "a" [ Ir.av ~c:2 "i" ]));
              ];
          };
        ];
    }
  in
  let sched = Schedule.unfused ~nprocs:3 oob in
  (match Exec.run ~machine:Machine.ksr2 ~jobs:2 sched with
  | _ -> Alcotest.fail "expected Out_of_bounds from worker"
  | exception Interp.Out_of_bounds _ -> ());
  (* the shared pool survives the failed region *)
  let p = Lf_kernels.Jacobi.program ~n:24 () in
  let good = Schedule.unfused ~nprocs:3 p in
  let serial = Exec.run ~machine:Machine.ksr2 ~jobs:1 good in
  let par = Exec.run ~machine:Machine.ksr2 ~jobs:2 good in
  Alcotest.(check bool) "engine usable after worker exception" true
    (results_identical serial par)

let test_jobs_env_default () =
  (* set_default_jobs overrides; restore to the env-derived default *)
  let d0 = Exec.default_jobs () in
  Exec.set_default_jobs 3;
  Alcotest.(check int) "override" 3 (Exec.default_jobs ());
  Exec.set_default_jobs d0;
  Alcotest.(check int) "restored" d0 (Exec.default_jobs ())

let suite =
  [
    Tutil.to_alcotest (prop_parallel_identical ~machine:Machine.ksr2 "ksr2");
    Tutil.to_alcotest (prop_parallel_identical ~machine:Machine.convex "convex");
    Tutil.to_alcotest (prop_miss_only_matches ~machine:Machine.convex "convex");
    Tutil.to_alcotest prop_run_compressed_identical;
    Alcotest.test_case "run-compressed: out-of-bounds parity" `Quick
      test_run_compressed_oob;
    Alcotest.test_case "miss-only: ll18/calc/filter" `Quick
      test_miss_only_directed;
    Alcotest.test_case "explicit pool reuse" `Quick test_explicit_pool;
    Alcotest.test_case "worker exception propagates" `Quick
      test_parallel_exception_propagates;
    Alcotest.test_case "default jobs override" `Quick test_jobs_env_default;
  ]
