(* The request/store/batch layer (lf_batch + Sim.request).

   Three contracts under test:
   - the Exec compatibility wrappers (run/run_unfused/run_fused) are
     bit-identical to building the equivalent Sim.request and calling
     run_request — a QCheck property over the paper's six kernels;
   - Store round trips are bit-exact, corruption-tolerant (any damaged
     entry is a miss, never an error) and safe under concurrent
     writers;
   - request digests are stable across sessions (golden values pinned
     here; an engine change must bump Sim.version_salt, which moves
     every digest and invalidates persisted results). *)

module Ir = Lf_ir.Ir
module Interp = Lf_ir.Interp
module Schedule = Lf_core.Schedule
module Partition = Lf_core.Partition
module Machine = Lf_machine.Machine
module Exec = Lf_machine.Exec
module Sim = Lf_machine.Sim
module Batch = Lf_batch.Batch
module Store = Lf_batch.Batch.Store
module Cache = Lf_cache.Cache

open QCheck

(* ------------------------------------------------------------------ *)
(* Shared kernel pool (same six programs as test_engine).              *)

let kernels : (string * (int -> Ir.program)) array =
  [|
    ("ll18", fun n -> Lf_kernels.Ll18.program ~n ());
    ("calc", fun n -> Lf_kernels.Calc.program ~n ());
    ("jacobi", fun n -> Lf_kernels.Jacobi.program ~n ());
    ("filter", fun n -> Lf_kernels.Filter.program ~rows:n ~cols:(n / 2 + 8) ());
    ( "tomcatv",
      fun n -> List.hd (Lf_kernels.Apps.tomcatv ~n ()).Lf_kernels.Apps.sequences
    );
    ( "hydro2d",
      fun n ->
        List.hd
          (Lf_kernels.Apps.hydro2d ~rows:n ~cols:(n / 2 + 8) ())
            .Lf_kernels.Apps.sequences );
  |]

type layout_pick = L_contiguous | L_padded of int | L_partitioned

let layout_of_pick ~machine pick (p : Ir.program) =
  match pick with
  | L_contiguous -> Partition.contiguous p.Ir.decls
  | L_padded pad -> Partition.padded ~pad p.Ir.decls
  | L_partitioned ->
    Partition.cache_partitioned
      ~cache:
        {
          Partition.capacity = machine.Machine.cache.Cache.capacity;
          line = machine.Machine.cache.Cache.line;
          assoc = machine.Machine.cache.Cache.assoc;
        }
      p.Ir.decls

type case = {
  kernel : int;
  n : int;
  nprocs : int;
  strip : int;
  fuse : bool;
  pick : layout_pick;
  steps : int;
  mode_ix : int;
}

let modes = [| Sim.Full; Sim.Miss_only; Sim.Run_compressed |]

let gen_case =
  let open Gen in
  let* kernel = int_range 0 (Array.length kernels - 1) in
  let* n = int_range 24 40 in
  let* nprocs = int_range 1 5 in
  let* strip = int_range 2 10 in
  let* fuse = bool in
  let* pick =
    oneof
      [
        return L_contiguous;
        map (fun p -> L_padded p) (int_range 1 4);
        return L_partitioned;
      ]
  in
  let* steps = int_range 1 2 in
  let* mode_ix = int_range 0 2 in
  return { kernel; n; nprocs; strip; fuse; pick; steps; mode_ix }

let arb_case =
  make
    ~print:(fun c ->
      Printf.sprintf "%s n=%d nprocs=%d strip=%d fused=%b %s steps=%d mode=%s"
        (fst kernels.(c.kernel))
        c.n c.nprocs c.strip c.fuse
        (match c.pick with
        | L_contiguous -> "contiguous"
        | L_padded p -> Printf.sprintf "pad:%d" p
        | L_partitioned -> "partitioned")
        c.steps
        (Sim.mode_to_string modes.(c.mode_ix)))
    gen_case

let results_identical (a : Exec.result) (b : Exec.result) =
  a.Exec.cycles = b.Exec.cycles
  && a.Exec.phase_cycles = b.Exec.phase_cycles
  && a.Exec.barrier_cycles = b.Exec.barrier_cycles
  && a.Exec.total_refs = b.Exec.total_refs
  && a.Exec.total_misses = b.Exec.total_misses
  && a.Exec.cold_misses = b.Exec.cold_misses
  && a.Exec.tlb_misses = b.Exec.tlb_misses
  && a.Exec.proc_misses = b.Exec.proc_misses

let counters_identical = results_identical

(* ------------------------------------------------------------------ *)
(* Compatibility wrappers vs run_request                               *)

(* run_unfused/run_fused c equals run_request of Sim.unfused/Sim.fused
   with the same arguments, store included. *)
let prop_wrappers_equal_request ~machine name =
  Test.make ~count:40
    ~name:("legacy wrappers equal run_request (" ^ name ^ ")")
    arb_case
    (fun c ->
      let _, mk = kernels.(c.kernel) in
      let p = mk c.n in
      let mode = modes.(c.mode_ix) in
      let layout = layout_of_pick ~machine c.pick p in
      let legacy () =
        if c.fuse then
          Exec.run_fused ~mode ~layout ~machine ~nprocs:c.nprocs
            ~strip:c.strip ~steps:c.steps p
        else
          Exec.run_unfused ~mode ~layout ~machine ~nprocs:c.nprocs
            ~steps:c.steps p
      in
      let request () =
        let req =
          if c.fuse then
            Sim.fused ~strip:c.strip ~layout ~steps:c.steps ~mode ~machine
              ~nprocs:c.nprocs p
          else
            Sim.unfused ~layout ~steps:c.steps ~mode ~machine
              ~nprocs:c.nprocs p
        in
        Exec.run_request req
      in
      match legacy () with
      | exception Schedule.Illegal _ -> true
      | exception Invalid_argument _ -> true (* more procs than iters *)
      | l ->
        let r = request () in
        if not (results_identical l r) then
          Test.fail_report "wrapper result differs from run_request";
        if not (Interp.equal l.Exec.store r.Exec.store) then
          Test.fail_report "wrapper store differs from run_request";
        true)

(* Exec.run on a prebuilt schedule equals run_request of the Explicit
   request wrapping that schedule. *)
let prop_run_equals_explicit ~machine name =
  Test.make ~count:40
    ~name:("Exec.run equals Explicit run_request (" ^ name ^ ")")
    arb_case
    (fun c ->
      let _, mk = kernels.(c.kernel) in
      let p = mk c.n in
      let mode = modes.(c.mode_ix) in
      let sched () =
        if c.fuse then Schedule.fused ~nprocs:c.nprocs ~strip:c.strip p
        else Schedule.unfused ~nprocs:c.nprocs p
      in
      match sched () with
      | exception Schedule.Illegal _ -> true
      | exception Invalid_argument _ -> true
      | sched ->
        let layout = layout_of_pick ~machine c.pick p in
        let l = Exec.run ~mode ~layout ~machine ~steps:c.steps sched in
        let r =
          Exec.run_request
            (Sim.of_schedule ~layout ~steps:c.steps ~mode ~machine sched)
        in
        if not (results_identical l r && Interp.equal l.Exec.store r.Exec.store)
        then Test.fail_report "Exec.run differs from Explicit run_request";
        true)

(* ------------------------------------------------------------------ *)
(* Store                                                               *)

(* A scratch store in a fresh temp directory. *)
let scratch_store () =
  let path = Filename.temp_file "lf_store_test" "" in
  Sys.remove path;
  Store.open_ ~dir:path ()

let sample_request ?(mode = Sim.Run_compressed) ?(n = 48) ?(nprocs = 3) () =
  let p = Lf_kernels.Ll18.program ~n () in
  let layout = Partition.contiguous p.Ir.decls in
  Sim.fused ~strip:6 ~layout ~mode ~machine:Machine.convex ~nprocs p

let entry_path store req =
  Filename.concat (Store.dir store) (Sim.digest req ^ ".lfres")

(* Round trip: what lookup returns is bit-identical to what add was
   given — floats included (serialised via their IEEE-754 bits). *)
let test_store_roundtrip () =
  let store = scratch_store () in
  let req = sample_request () in
  Alcotest.(check bool) "miss before add" true (Store.lookup store req = None);
  let res = Exec.run_request req in
  Alcotest.(check bool) "add accepts" true (Store.add store req res);
  match Store.lookup store req with
  | None -> Alcotest.fail "lookup missed after add"
  | Some got ->
    Alcotest.(check bool) "bit-identical round trip" true
      (counters_identical res got);
    Alcotest.(check int) "replayed store is empty" 0
      (Hashtbl.length got.Exec.store.Interp.arrays)

(* QCheck round trip across kernels/modes: every cacheable request's
   result survives the store byte-for-byte. *)
let prop_store_roundtrip =
  Test.make ~count:25 ~name:"store round trip is bit-exact (all kernels)"
    arb_case
    (fun c ->
      let _, mk = kernels.(c.kernel) in
      let p = mk c.n in
      let mode = modes.(c.mode_ix) in
      let machine = Machine.convex in
      let layout = layout_of_pick ~machine c.pick p in
      let req () =
        if c.fuse then
          Sim.fused ~strip:c.strip ~layout ~steps:c.steps ~mode ~machine
            ~nprocs:c.nprocs p
        else
          Sim.unfused ~layout ~steps:c.steps ~mode ~machine ~nprocs:c.nprocs p
      in
      match Exec.run_request (req ()) with
      | exception Schedule.Illegal _ -> true
      | exception Invalid_argument _ -> true
      | res -> (
        let store = scratch_store () in
        let req = req () in
        let added = Store.add store req res in
        if mode = Sim.Full then (
          if added then Test.fail_report "Full-mode request was persisted";
          if Store.lookup store req <> None then
            Test.fail_report "Full-mode request answered from store";
          true)
        else
          match Store.lookup store req with
          | None -> Test.fail_report "round trip missed"
          | Some got ->
            if not (counters_identical res got) then
              Test.fail_report "round trip not bit-identical";
            ignore (Store.clear store);
            true))

(* Corrupt entries are misses, never crashes: truncation, garbage,
   bit flips, a stale version salt, an empty file. *)
let test_store_corruption () =
  let store = scratch_store () in
  let req = sample_request () in
  let res = Exec.run_request req in
  let path = entry_path store req in
  let read_all () =
    let ic = open_in_bin path in
    let s = really_input_string ic (in_channel_length ic) in
    close_in ic;
    s
  in
  let write s =
    let oc = open_out_bin path in
    output_string oc s;
    close_out oc
  in
  let expect_miss what =
    match Store.lookup store req with
    | None -> ()
    | Some _ -> Alcotest.failf "corrupt entry (%s) served as a hit" what
  in
  let find_sub s sub =
    let n = String.length s and m = String.length sub in
    let rec go i =
      if i + m > n then -1 else if String.sub s i m = sub then i else go (i + 1)
    in
    go 0
  in
  let replace_once s ~sub ~by =
    let i = find_sub s sub in
    Alcotest.(check bool) ("entry contains " ^ sub) true (i >= 0);
    String.sub s 0 i ^ by
    ^ String.sub s (i + String.length sub)
        (String.length s - i - String.length sub)
  in
  ignore (Store.add store req res);
  let good = read_all () in
  write (String.sub good 0 (String.length good / 2));
  expect_miss "truncated";
  write "";
  expect_miss "empty";
  write "total garbage\nnot a result\n";
  expect_miss "garbage";
  (* perturb the first digit of the cycles field *)
  let idx = find_sub good "cycles " in
  Alcotest.(check bool) "found cycles field" true (idx >= 0);
  let flipped = Bytes.of_string good in
  Bytes.set flipped (idx + 7) 'x';
  write (Bytes.to_string flipped);
  expect_miss "field corrupted";
  (* stale salt: rewrite the header line *)
  write
    (replace_once good
       ~sub:("lfres1 " ^ Sim.version_salt)
       ~by:"lfres1 someone-elses-salt");
  expect_miss "stale salt";
  (* and a pristine rewrite is a hit again *)
  write good;
  (match Store.lookup store req with
  | Some got ->
    Alcotest.(check bool) "restored entry hits" true
      (counters_identical res got)
  | None -> Alcotest.fail "restored entry missed");
  ignore (Store.clear store)

(* Concurrent writers of the same digest: atomic rename means no crash
   and a readable entry afterwards. *)
let test_store_concurrent_writers () =
  let store = scratch_store () in
  let req = sample_request ~n:32 () in
  let res = Exec.run_request req in
  let writers =
    Array.init 4 (fun _ ->
        Domain.spawn (fun () ->
            for _ = 1 to 25 do
              ignore (Store.add store req res)
            done;
            true))
  in
  let ok = Array.for_all Domain.join writers in
  Alcotest.(check bool) "all writers finished" true ok;
  (match Store.lookup store req with
  | Some got ->
    Alcotest.(check bool) "entry readable after racing writers" true
      (counters_identical res got)
  | None -> Alcotest.fail "entry missing after racing writers");
  let st = Store.stats store in
  Alcotest.(check int) "exactly one entry" 1 st.Store.entries;
  ignore (Store.clear store)

let test_store_stats_gc_clear () =
  let store = scratch_store () in
  let reqs =
    List.map (fun n -> sample_request ~n ()) [ 24; 28; 32; 36; 40 ]
  in
  List.iter
    (fun req -> ignore (Store.add store req (Exec.run_request req)))
    reqs;
  let st = Store.stats store in
  Alcotest.(check int) "five entries" 5 st.Store.entries;
  Alcotest.(check bool) "bytes counted" true (st.Store.bytes > 0);
  (* keep roughly two entries' worth *)
  let keep = 2 * (st.Store.bytes / 5) in
  let removed = Store.gc ~max_bytes:keep store in
  Alcotest.(check bool) "gc removed some" true (removed >= 3);
  let st = Store.stats store in
  Alcotest.(check bool) "gc respects budget" true (st.Store.bytes <= keep);
  let removed = Store.clear store in
  Alcotest.(check int) "clear removes the rest" removed st.Store.entries;
  Alcotest.(check int) "store empty" 0 (Store.stats store).Store.entries

(* ------------------------------------------------------------------ *)
(* Batch.run                                                           *)

let test_batch_dedup_and_hits () =
  let store = scratch_store () in
  let r1 = sample_request ~n:24 () in
  let r2 = sample_request ~n:28 () in
  (* r1 appears three times: once computed, twice deduplicated *)
  let outcomes, summary = Batch.run ~store [ r1; r2; r1; r1 ] in
  Alcotest.(check int) "total" 4 summary.Batch.total;
  Alcotest.(check int) "unique" 2 summary.Batch.unique;
  Alcotest.(check int) "computed" 2 summary.Batch.computed;
  Alcotest.(check int) "no hits yet" 0 summary.Batch.hits;
  let results = Batch.results_exn outcomes in
  Alcotest.(check bool) "repeats share the representative result" true
    (results_identical results.(0) results.(2)
    && results_identical results.(0) results.(3));
  (* second batch: everything answered from the store *)
  let outcomes2, summary2 = Batch.run ~store [ r1; r2 ] in
  Alcotest.(check int) "warm hits" 2 summary2.Batch.hits;
  Alcotest.(check int) "warm computed" 0 summary2.Batch.computed;
  Array.iteri
    (fun i (o : Batch.outcome) ->
      Alcotest.(check bool) "marked from_store" true o.Batch.from_store;
      Alcotest.(check bool) "warm result bit-identical" true
        (results_identical (Result.get_ok o.Batch.result) results.(i)))
    outcomes2;
  (* --cold forces recomputation but still counts as computed *)
  let _, summary3 = Batch.run ~store ~cold:true [ r1 ] in
  Alcotest.(check int) "cold recomputes" 1 summary3.Batch.computed;
  ignore (Store.clear store)

let test_batch_parallel_identical () =
  let reqs =
    List.concat_map
      (fun n -> [ sample_request ~n (); sample_request ~n ~nprocs:2 () ])
      [ 24; 28; 32; 36 ]
  in
  let serial, _ = Batch.run ~jobs:1 reqs in
  let parallel, _ = Batch.run ~jobs:4 reqs in
  Array.iteri
    (fun i (s : Batch.outcome) ->
      Alcotest.(check bool) "sharded batch bit-identical to serial" true
        (results_identical
           (Result.get_ok s.Batch.result)
           (Result.get_ok parallel.(i).Batch.result)))
    serial

let test_batch_failure_propagation () =
  (* 9 processors on an 8-iteration space: Schedule.unfused raises,
     the batch reports Crashed, results_exn rethrows first in request
     order, and healthy jobs still complete *)
  let p = Tutil.chain_program ~lo:1 ~hi:8 [ [ 0 ]; [ 0 ] ] in
  let layout = Partition.contiguous p.Ir.decls in
  let bad =
    Sim.unfused ~layout ~mode:Sim.Run_compressed ~machine:Machine.convex
      ~nprocs:9 p
  in
  let good = sample_request ~n:24 () in
  let outcomes, summary = Batch.run [ good; bad; good ] in
  Alcotest.(check int) "one unique failure" 1 summary.Batch.failed;
  (match outcomes.(1).Batch.result with
  | Error (Batch.Crashed _) -> ()
  | Error (Batch.Timed_out _) -> Alcotest.fail "crash reported as timeout"
  | Ok _ -> Alcotest.fail "illegal request reported success");
  (match outcomes.(0).Batch.result with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "healthy request infected by the failure");
  (match Batch.results_exn outcomes with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "results_exn did not raise")

let test_batch_timeout () =
  let req = sample_request ~n:48 () in
  let outcomes, summary = Batch.run ~timeout_s:0.0 [ req ] in
  Alcotest.(check int) "timed out" 1 summary.Batch.failed;
  match outcomes.(0).Batch.result with
  | Error (Batch.Timed_out dt) ->
    Alcotest.(check bool) "reports elapsed wall" true (dt >= 0.0)
  | _ -> Alcotest.fail "zero budget did not time out"

let test_run_one_sink_always_computes () =
  let store = scratch_store () in
  let req = sample_request ~n:24 () in
  let sink = Lf_obs.Obs.create () in
  let c0 = Batch.computed_count () in
  let r1 = Batch.run_one ~store ~sink req in
  Alcotest.(check bool) "sink populated" true
    ((Lf_obs.Obs.totals sink).Lf_obs.Obs.t_refs > 0);
  (* the sinked run warmed the store: a sink-less repeat is a hit *)
  let h0 = Batch.hit_count () in
  let r2 = Batch.run_one ~store req in
  Alcotest.(check bool) "sink-less repeat hits the store" true
    (Batch.hit_count () = h0 + 1);
  Alcotest.(check bool) "hit bit-identical" true (results_identical r1 r2);
  (* a second sinked run computes again (replay cannot fill a sink) *)
  let sink2 = Lf_obs.Obs.create () in
  ignore (Batch.run_one ~store ~sink:sink2 req);
  Alcotest.(check bool) "sinked runs always compute" true
    (Batch.computed_count () >= c0 + 2);
  ignore (Store.clear store)

(* ------------------------------------------------------------------ *)
(* Digest stability                                                    *)

(* Golden digests: these move only when the canonical form, the
   serialisation salt or a dependent module fingerprint changes — all
   of which invalidate the affected persisted results, which is
   exactly what this test makes deliberate. *)
let test_digest_golden () =
  let ll18 =
    sample_request ~n:48 ~nprocs:3 ()
  in
  let jacobi =
    Sim.unfused ~mode:Sim.Miss_only ~machine:Machine.ksr2 ~nprocs:2
      (Lf_kernels.Jacobi.program ~n:32 ())
  in
  let explicit =
    Sim.of_schedule ~machine:Machine.convex
      (Schedule.unfused ~nprocs:2 (Lf_kernels.Calc.program ~n:32 ()))
  in
  Alcotest.(check string) "ll18 fused digest" "89af1d649796201da17e4e5f8c826bac"
    (Sim.digest ll18);
  Alcotest.(check string) "jacobi unfused digest" "e1a08727634c4bbbf17bcdc1f7b735d7"
    (Sim.digest jacobi);
  Alcotest.(check string) "calc explicit digest" "8117871436bba3a9b65ed8e4e1ecae6c"
    (Sim.digest explicit)

let test_digest_discriminates () =
  let base () = sample_request ~n:48 ~nprocs:3 () in
  let d0 = Sim.digest (base ()) in
  Alcotest.(check string) "digest deterministic" d0 (Sim.digest (base ()));
  let variants =
    [
      ("mode", sample_request ~mode:Sim.Miss_only ~n:48 ~nprocs:3 ());
      ("size", sample_request ~n:52 ~nprocs:3 ());
      ("nprocs", sample_request ~n:48 ~nprocs:4 ());
      ( "machine",
        Sim.fused ~strip:6 ~mode:Sim.Run_compressed ~machine:Machine.ksr2
          ~nprocs:3
          (Lf_kernels.Ll18.program ~n:48 ()) );
      ( "layout",
        let p = Lf_kernels.Ll18.program ~n:48 () in
        Sim.fused ~strip:6 ~layout:(Partition.padded ~pad:1 p.Ir.decls)
          ~mode:Sim.Run_compressed ~machine:Machine.convex ~nprocs:3 p );
      ( "strip",
        let p = Lf_kernels.Ll18.program ~n:48 () in
        Sim.fused ~strip:7 ~layout:(Partition.contiguous p.Ir.decls)
          ~mode:Sim.Run_compressed ~machine:Machine.convex ~nprocs:3 p );
    ]
  in
  List.iter
    (fun (what, req) ->
      if Sim.digest req = d0 then
        Alcotest.failf "digest ignores the %s field" what)
    variants

(* ------------------------------------------------------------------ *)
(* Per-module fingerprints                                             *)

(* of_request folds in exactly the modules the request depends on:
   ir/cache/machine always; schedule only when the request realises a
   schedule (not Explicit); derive only when a Fused request must
   derive its shift/peel amounts; partition only for the default
   layout. *)
let test_fingerprint_modules () =
  let names r = List.map fst (Sim.Fingerprint.of_request r) in
  let p = Lf_kernels.Ll18.program ~n:32 () in
  let layout = Partition.contiguous p.Ir.decls in
  let machine = Machine.convex in
  let fused = Sim.fused ~strip:6 ~layout ~machine ~nprocs:2 p in
  Alcotest.(check (list string)) "fused, explicit layout"
    [ "cache"; "derive"; "ir"; "machine"; "schedule" ]
    (names fused);
  let unfused = Sim.unfused ~machine ~nprocs:2 p in
  Alcotest.(check (list string)) "unfused, default layout"
    [ "cache"; "ir"; "machine"; "partition"; "schedule" ]
    (names unfused);
  let explicit =
    Sim.of_schedule ~layout ~machine (Schedule.unfused ~nprocs:2 p)
  in
  Alcotest.(check (list string)) "explicit schedule, explicit layout"
    [ "cache"; "ir"; "machine" ]
    (names explicit)

(* An override moves the digests of exactly the dependent requests:
   bumping "derive" re-keys fused-with-derivation requests and nothing
   else; clearing restores every digest. *)
let test_fingerprint_override_digests () =
  Sim.Fingerprint.clear_overrides ();
  let p = Lf_kernels.Ll18.program ~n:32 () in
  let layout = Partition.contiguous p.Ir.decls in
  let machine = Machine.convex in
  let fused = Sim.fused ~strip:6 ~layout ~machine ~nprocs:2 p in
  let unfused = Sim.unfused ~layout ~machine ~nprocs:2 p in
  let df0 = Sim.digest fused and du0 = Sim.digest unfused in
  (match Sim.Fingerprint.set_override "derive" "test-bump" with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  Alcotest.(check string) "override visible" "test-bump"
    (Sim.Fingerprint.value "derive");
  Alcotest.(check bool) "fused digest moved" true (Sim.digest fused <> df0);
  Alcotest.(check string) "unfused digest unmoved" du0 (Sim.digest unfused);
  Sim.Fingerprint.clear_overrides ();
  Alcotest.(check string) "fused digest restored" df0 (Sim.digest fused);
  (match Sim.Fingerprint.set_spec "schedule=v2" with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  Alcotest.(check bool) "set_spec applies" true (Sim.digest unfused <> du0);
  Sim.Fingerprint.clear_overrides ();
  (match Sim.Fingerprint.set_override "no-such-module" "x" with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "unknown module accepted");
  (match Sim.Fingerprint.set_spec "derive=has space" with
  | Error _ -> ()
  | Ok () ->
    Sim.Fingerprint.clear_overrides ();
    Alcotest.fail "whitespace fingerprint accepted");
  match Sim.Fingerprint.set_spec "garbage" with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "spec without '=' accepted"

(* fingerprint_stats: entries written under the live set are live;
   after an override the old entries read as stale, per-pair counts
   split accordingly. *)
let test_fingerprint_stats () =
  Sim.Fingerprint.clear_overrides ();
  let store = scratch_store () in
  let add req = ignore (Store.add store req (Exec.run_request req)) in
  add (sample_request ~n:24 ());
  add (sample_request ~n:28 ());
  let st = Store.fingerprint_stats store in
  Alcotest.(check int) "scanned both" 2 st.Store.fp_scanned;
  Alcotest.(check int) "none unreadable" 0 st.Store.fp_unreadable;
  Alcotest.(check int) "none stale under live set" 0 st.Store.fp_stale;
  Alcotest.(check bool) "derive pair counted" true
    (List.assoc_opt ("derive", Sim.Fingerprint.value "derive") st.Store.fp_counts
    = Some 2);
  (match Sim.Fingerprint.set_override "derive" "stats-bump" with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  add (sample_request ~n:32 ());
  let st = Store.fingerprint_stats store in
  Alcotest.(check int) "three entries scanned" 3 st.Store.fp_scanned;
  Alcotest.(check int) "old entries now stale" 2 st.Store.fp_stale;
  Alcotest.(check bool) "both derive versions counted" true
    (List.assoc_opt ("derive", "stats-bump") st.Store.fp_counts = Some 1
    && List.assoc_opt ("derive", "lf-derive-1") st.Store.fp_counts = Some 2);
  Sim.Fingerprint.clear_overrides ();
  ignore (Store.clear store)

let test_mode_strings () =
  List.iter
    (fun m ->
      match Sim.mode_of_string (Sim.mode_to_string m) with
      | Ok m' -> Alcotest.(check bool) "mode round trip" true (m = m')
      | Error e -> Alcotest.fail e)
    [ Sim.Full; Sim.Miss_only; Sim.Run_compressed ];
  (match Sim.mode_of_string "run-compressed" with
  | Ok Sim.Run_compressed -> ()
  | _ -> Alcotest.fail "run-compressed alias rejected");
  match Sim.mode_of_string "warp-speed" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "nonsense engine accepted"

(* ------------------------------------------------------------------ *)
(* Cache.geometry (API-redesign satellite)                             *)

let test_cache_geometry () =
  let g = Cache.geometry ~footprint:4096 Cache.convex_cache in
  Alcotest.(check bool) "geometry carries the shape" true
    (g.Cache.shape = Cache.convex_cache && g.Cache.footprint = 4096);
  let via_geometry = Cache.of_geometry g in
  let via_create = Cache.create ~footprint:4096 Cache.convex_cache in
  Alcotest.(check bool) "create is of_geometry . geometry" true
    (Cache.config via_geometry = Cache.config via_create);
  Alcotest.(check bool) "presets match the configs" true
    ((Cache.ksr2_geometry ()).Cache.shape = Cache.ksr2_cache
    && (Cache.convex_geometry ()).Cache.shape = Cache.convex_cache
    && (Cache.ksr2_geometry ()).Cache.footprint = 0);
  match Cache.of_geometry (Cache.geometry { capacity = 100; line = 3; assoc = 1 }) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "of_geometry accepted a non-power-of-two line"

(* ------------------------------------------------------------------ *)

(* The store guard is an explicit allow-list of pure simulation modes:
   only requests whose observables are deterministic functions of the
   request may persist.  Full mode is out (its observable is the array
   store, which is not serialised), and measured wall-clock from the
   native backend is excluded *by type* — a Lf_native.Native.timing is
   not an Exec.result and has no Sim.request digest to be filed under,
   so there is no code path by which host time can reach _lf_cache/.
   This test pins the allow-list; the Full-mode half is also covered
   end-to-end by prop_store_roundtrip above. *)
let test_cacheable_allowlist () =
  Alcotest.(check bool)
    "Miss_only is cacheable" true
    (Store.cacheable (sample_request ~mode:Sim.Miss_only ()));
  Alcotest.(check bool)
    "Run_compressed is cacheable" true
    (Store.cacheable (sample_request ~mode:Sim.Run_compressed ()));
  Alcotest.(check bool)
    "Full is excluded" false
    (Store.cacheable (sample_request ~mode:Sim.Full ()));
  (* a warm hit reports zero wall time: wall-clock lives outside the
     persisted entry *)
  let store = scratch_store () in
  let req = sample_request ~n:24 () in
  let outcomes, _ = Batch.run ~store [ req ] in
  Alcotest.(check bool)
    "cold run takes time" true
    (outcomes.(0).Batch.wall_s >= 0.0 && not outcomes.(0).Batch.from_store);
  let warm, _ = Batch.run ~store [ req ] in
  Alcotest.(check bool) "warm hit" true warm.(0).Batch.from_store;
  Alcotest.(check (float 0.0)) "warm wall_s is 0" 0.0 warm.(0).Batch.wall_s;
  ignore (Store.clear store)

let machine_cases =
  [ (Machine.convex, "convex"); (Machine.ksr2, "ksr2") ]

let suite =
  List.concat_map
    (fun (machine, name) ->
      [
        Tutil.to_alcotest (prop_wrappers_equal_request ~machine name);
        Tutil.to_alcotest (prop_run_equals_explicit ~machine name);
      ])
    machine_cases
  @ [
      Tutil.to_alcotest prop_store_roundtrip;
      Alcotest.test_case "store round trip" `Quick test_store_roundtrip;
      Alcotest.test_case "store corruption tolerance" `Quick
        test_store_corruption;
      Alcotest.test_case "store concurrent writers" `Quick
        test_store_concurrent_writers;
      Alcotest.test_case "store stats/gc/clear" `Quick
        test_store_stats_gc_clear;
      Alcotest.test_case "batch dedup and warm hits" `Quick
        test_batch_dedup_and_hits;
      Alcotest.test_case "sharded batch bit-identical" `Quick
        test_batch_parallel_identical;
      Alcotest.test_case "batch failure propagation" `Quick
        test_batch_failure_propagation;
      Alcotest.test_case "batch per-job timeout" `Quick test_batch_timeout;
      Alcotest.test_case "run_one sink always computes" `Quick
        test_run_one_sink_always_computes;
      Alcotest.test_case "digest golden values" `Quick test_digest_golden;
      Alcotest.test_case "digest discriminates every field" `Quick
        test_digest_discriminates;
      Alcotest.test_case "fingerprint module dependence" `Quick
        test_fingerprint_modules;
      Alcotest.test_case "fingerprint overrides re-key dependents only"
        `Quick test_fingerprint_override_digests;
      Alcotest.test_case "store fingerprint stats" `Quick
        test_fingerprint_stats;
      Alcotest.test_case "mode string round trip" `Quick test_mode_strings;
      Alcotest.test_case "Cache.geometry record" `Quick test_cache_geometry;
      Alcotest.test_case "cacheable is an allow-list" `Quick
        test_cacheable_allowlist;
    ]
