(* Tests for the domains runtime: pool, blocked loops, barrier, and the
   native kernels (validated bit-for-bit against the IR reference). *)

module Pool = Lf_parallel.Pool
module Barrier = Lf_parallel.Barrier
module N = Lf_kernels.Native
module Interp = Lf_ir.Interp

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int

let with_pool n f =
  let pool = Pool.create n in
  Fun.protect ~finally:(fun () -> Pool.shutdown pool) (fun () -> f pool)

let test_pool_runs_all_workers () =
  with_pool 4 (fun pool ->
      let seen = Array.make 4 false in
      Pool.run pool (fun w -> seen.(w) <- true);
      check bool "all workers ran" true (Array.for_all (fun b -> b) seen))

let test_pool_multiple_regions () =
  with_pool 3 (fun pool ->
      let counter = Atomic.make 0 in
      for _ = 1 to 50 do
        Pool.run pool (fun _ -> Atomic.incr counter)
      done;
      check int "150 executions" 150 (Atomic.get counter))

let test_pool_single_worker () =
  with_pool 1 (fun pool ->
      let hit = ref false in
      Pool.run pool (fun w ->
          check int "worker 0" 0 w;
          hit := true);
      check bool "ran" true !hit)

let test_parallel_for_coverage () =
  with_pool 4 (fun pool ->
      let seen = Array.make 100 0 in
      Pool.parallel_for pool ~lo:5 ~hi:94 (fun i ->
          seen.(i) <- seen.(i) + 1);
      for i = 0 to 99 do
        check int
          (Printf.sprintf "index %d" i)
          (if i >= 5 && i <= 94 then 1 else 0)
          seen.(i)
      done)

let test_block_coverage () =
  List.iter
    (fun (lo, hi, n) ->
      let expected = ref lo in
      for w = 0 to n - 1 do
        let bs, be = Pool.block ~lo ~hi ~n ~w in
        check int "contiguous" !expected bs;
        expected := be + 1
      done;
      check int "full" (hi + 1) !expected)
    [ (0, 99, 7); (1, 510, 56); (3, 8, 2) ]

let test_barrier_phases () =
  (* all participants finish phase 1 before any enters phase 2 *)
  with_pool 4 (fun pool ->
      let b = Barrier.create 4 in
      let phase1 = Atomic.make 0 in
      let violations = Atomic.make 0 in
      Pool.run pool (fun _ ->
          Atomic.incr phase1;
          Barrier.wait b;
          if Atomic.get phase1 <> 4 then Atomic.incr violations);
      check int "no violations" 0 (Atomic.get violations))

let test_barrier_reusable () =
  with_pool 3 (fun pool ->
      let b = Barrier.create 3 in
      let count = Atomic.make 0 in
      Pool.run pool (fun _ ->
          for _ = 1 to 20 do
            Barrier.wait b;
            Atomic.incr count
          done);
      check int "60 crossings" 60 (Atomic.get count))

let test_with_pool_value_and_cleanup () =
  let v = Pool.with_pool 3 (fun pool -> Pool.size pool * 7) in
  check int "returns f's value" 21 v;
  (* the pool is shut down even when f raises *)
  match Pool.with_pool 2 (fun _ -> failwith "boom") with
  | exception Failure m -> check bool "exception propagates" true (m = "boom")
  | _ -> Alcotest.fail "expected Failure"

let test_run_exception_rejoins () =
  with_pool 4 (fun pool ->
      (* one worker raises: the join must complete and re-raise *)
      (match Pool.run pool (fun w -> if w = 2 then failwith "w2") with
      | exception Failure m -> check bool "first exception" true (m = "w2")
      | () -> Alcotest.fail "expected Failure");
      (* the pool is still usable for subsequent regions *)
      let counter = Atomic.make 0 in
      Pool.run pool (fun _ -> Atomic.incr counter);
      check int "pool usable after failure" 4 (Atomic.get counter))

let test_dynamic_for_coverage () =
  List.iter
    (fun (workers, chunk, lo, hi) ->
      with_pool workers (fun pool ->
          let seen = Array.make 120 0 in
          Pool.dynamic_for ?chunk pool ~lo ~hi (fun i ->
              seen.(i) <- seen.(i) + 1);
          Array.iteri
            (fun i c ->
              check int
                (Printf.sprintf "w=%d index %d" workers i)
                (if i >= lo && i <= hi then 1 else 0)
                c)
            seen))
    [
      (1, None, 0, 99);
      (3, None, 5, 94);
      (4, Some 7, 0, 119);
      (4, Some 200, 10, 20);
      (2, None, 50, 49) (* empty range *);
    ]

let test_dynamic_for_imbalanced () =
  (* self-scheduling drains a heavily skewed workload: every index is
     claimed exactly once even when early iterations are much slower *)
  with_pool 4 (fun pool ->
      let sum = Atomic.make 0 in
      Pool.dynamic_for pool ~lo:1 ~hi:60 (fun i ->
          if i < 4 then ignore (Sys.opaque_identity (Array.make 10000 i));
          ignore (Atomic.fetch_and_add sum i));
      check int "sum of 1..60" 1830 (Atomic.get sum))

let test_barrier_resize_releases_stale_waiters () =
  (* two waiters parked on a 3-party barrier: shrinking to 2 must
     release them instead of deadlocking the stale generation *)
  let b = Barrier.create 3 in
  let released = Atomic.make 0 in
  let ds =
    List.init 2 (fun _ ->
        Domain.spawn (fun () ->
            Barrier.wait b;
            Atomic.incr released))
  in
  while Atomic.get released = 0 && Barrier.parties b = 3 do
    Domain.cpu_relax ();
    if Atomic.get released = 0 then Barrier.resize b 2
  done;
  List.iter Domain.join ds;
  check int "both waiters released" 2 (Atomic.get released);
  check int "new party count" 2 (Barrier.parties b);
  (* the resized barrier works for the new generation *)
  with_pool 2 (fun pool ->
      let crossings = Atomic.make 0 in
      Pool.run pool (fun _ ->
          Barrier.wait b;
          Atomic.incr crossings);
      check int "reusable after resize" 2 (Atomic.get crossings))

(* ------------------------------------------------------------------ *)
(* Spin barrier (lf_native's phase separator)                          *)

module Spin = Lf_parallel.Spin_barrier

let test_spin_barrier_phases () =
  (* all participants finish phase 1 before any enters phase 2 *)
  with_pool 4 (fun pool ->
      let b = Spin.create 4 in
      let phase1 = Atomic.make 0 in
      let violations = Atomic.make 0 in
      Pool.run pool (fun _ ->
          Atomic.incr phase1;
          Spin.wait b;
          if Atomic.get phase1 <> 4 then Atomic.incr violations);
      check int "no violations" 0 (Atomic.get violations))

let test_spin_barrier_reusable () =
  (* sense reversal: many generations through the same barrier, with
     enough crossings to cross the spin budget's sleep fallback on an
     oversubscribed host *)
  with_pool 3 (fun pool ->
      let b = Spin.create 3 in
      let count = Atomic.make 0 in
      Pool.run pool (fun _ ->
          for _ = 1 to 50 do
            Spin.wait b;
            Atomic.incr count
          done);
      check int "150 crossings" 150 (Atomic.get count))

let test_spin_barrier_single_party () =
  let b = Spin.create 1 in
  for _ = 1 to 5 do Spin.wait b done;
  check int "parties" 1 (Spin.parties b)

let test_spin_barrier_rejects_nonpositive () =
  (match Spin.create 0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument for 0 parties");
  match Spin.create (-3) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument for negative parties"

let test_native_ll18_matches_ir () =
  let n = 48 in
  let a = N.Ll18_native.create n in
  N.Ll18_native.sequential a;
  let st = Interp.run (Lf_kernels.Ll18.program ~n ()) in
  check bool "zr" true (Interp.find_array st "zr" = a.N.Ll18_native.zr);
  check bool "zu" true (Interp.find_array st "zu" = a.N.Ll18_native.zu)

let test_native_ll18_fused_parallel () =
  let n = 64 in
  let seq = N.Ll18_native.create n in
  N.Ll18_native.sequential seq;
  List.iter
    (fun workers ->
      with_pool workers (fun pool ->
          let f = N.Ll18_native.create n in
          N.Ll18_native.fused ~strip:7 pool f;
          check bool
            (Printf.sprintf "fused w=%d" workers)
            true
            (N.Ll18_native.equal seq f);
          let u = N.Ll18_native.create n in
          N.Ll18_native.unfused pool u;
          check bool "unfused" true (N.Ll18_native.equal seq u)))
    [ 1; 2; 3; 4 ]

let test_native_jacobi_fused_parallel () =
  let n = 50 in
  let seq = N.Jacobi_native.create n in
  N.Jacobi_native.sequential seq;
  List.iter
    (fun workers ->
      with_pool workers (fun pool ->
          let f = N.Jacobi_native.create n in
          N.Jacobi_native.fused ~strip:5 pool f;
          check bool
            (Printf.sprintf "jacobi fused w=%d" workers)
            true
            (N.Jacobi_native.equal seq f)))
    [ 1; 2; 4; 5 ]

let test_native_jacobi_matches_ir () =
  let n = 40 in
  let t = N.Jacobi_native.create n in
  N.Jacobi_native.sequential t;
  let st = Interp.run (Lf_kernels.Jacobi.program ~n ()) in
  check bool "a matches" true (Interp.find_array st "a" = t.N.Jacobi_native.a)

let test_native_ll18_time_steps () =
  let n = 40 and steps = 3 in
  let f = N.Ll18_native.create n in
  with_pool 3 (fun pool -> N.Ll18_native.fused_steps ~strip:5 ~steps pool f);
  let st = Interp.run ~steps (Lf_kernels.Ll18.program ~n ()) in
  check bool "3 fused steps = IR 3 steps" true
    (Interp.find_array st "zr" = f.N.Ll18_native.zr
    && Interp.find_array st "zz" = f.N.Ll18_native.zz)

let test_checksums_differ_when_wrong () =
  let a = N.Jacobi_native.create 16 in
  let b = N.Jacobi_native.create 16 in
  N.Jacobi_native.sequential a;
  check bool "unequal before run" false (N.Jacobi_native.equal a b)

let suite =
  [
    ("pool runs all workers", `Quick, test_pool_runs_all_workers);
    ("pool multiple regions", `Quick, test_pool_multiple_regions);
    ("pool single worker", `Quick, test_pool_single_worker);
    ("parallel_for coverage", `Quick, test_parallel_for_coverage);
    ("block coverage", `Quick, test_block_coverage);
    ("barrier phases", `Quick, test_barrier_phases);
    ("barrier reusable", `Quick, test_barrier_reusable);
    ("with_pool value and cleanup", `Quick, test_with_pool_value_and_cleanup);
    ("run re-raises worker exception", `Quick, test_run_exception_rejoins);
    ("dynamic_for coverage", `Quick, test_dynamic_for_coverage);
    ("dynamic_for imbalanced", `Quick, test_dynamic_for_imbalanced);
    ("barrier resize releases stale waiters", `Quick,
     test_barrier_resize_releases_stale_waiters);
    ("spin barrier phases", `Quick, test_spin_barrier_phases);
    ("spin barrier reusable", `Quick, test_spin_barrier_reusable);
    ("spin barrier single party", `Quick, test_spin_barrier_single_party);
    ("spin barrier rejects nonpositive", `Quick,
     test_spin_barrier_rejects_nonpositive);
    ("native ll18 = IR", `Quick, test_native_ll18_matches_ir);
    ("native ll18 fused parallel", `Quick, test_native_ll18_fused_parallel);
    ("native jacobi fused parallel", `Quick, test_native_jacobi_fused_parallel);
    ("native jacobi = IR", `Quick, test_native_jacobi_matches_ir);
    ("native ll18 time steps", `Quick, test_native_ll18_time_steps);
    ("checksums differ when wrong", `Quick, test_checksums_differ_when_wrong);
  ]
